"""Columnar-recorder equivalence suite.

The structure-of-arrays :class:`~repro.sim.metrics.MetricsRecorder`
replaced the original per-event list-of-dataclasses store.  This suite
pins the refactor down: a verbatim copy of the seed implementation
(`SeedRecorder`) is fed the *identical* event streams and every output
— stored samples, exact integrals, grid exports, job counters — must
agree **bit for bit** (``==`` on floats, no tolerances).  The trace
digests of the 12-scenario library are pinned separately in
``tests/exp/test_determinism.py``.
"""

import bisect
import math
from dataclasses import dataclass

import numpy as np
import pytest

from repro.sim.metrics import MetricsRecorder, SeriesSample

FREQS = (1.2, 1.5, 1.8, 2.1, 2.4, 2.7)


# -- the seed implementation, kept verbatim as the reference ---------------------------


class SeedRecorder:
    """The original pure-Python recorder (reference implementation)."""

    def __init__(self, frequencies):
        self.frequencies = tuple(frequencies)
        self._times = []
        self._samples = []
        self.jobs = {}

    def sample(self, time, *, cores_by_freq, off_cores, power_watts, idle_watts,
               down_watts, infra_watts, bonus_watts, busy_watts=0.0):
        if self._times and time < self._times[-1]:
            raise ValueError(f"sample at {time} before last {self._times[-1]}")
        if len(cores_by_freq) != len(self.frequencies):
            raise ValueError("cores_by_freq length mismatch")
        s = SeriesSample(
            time=time,
            cores_by_freq=tuple(float(c) for c in cores_by_freq),
            off_cores=float(off_cores),
            power_watts=float(power_watts),
            idle_watts=float(idle_watts),
            down_watts=float(down_watts),
            infra_watts=float(infra_watts),
            bonus_watts=float(bonus_watts),
            busy_watts=float(busy_watts),
        )
        if self._times and time == self._times[-1]:
            self._samples[-1] = s
            return
        self._times.append(time)
        self._samples.append(s)

    def finalize(self, time):
        if self._samples:
            last = self._samples[-1]
            if time > last.time:
                self.sample(
                    time,
                    cores_by_freq=last.cores_by_freq,
                    off_cores=last.off_cores,
                    power_watts=last.power_watts,
                    idle_watts=last.idle_watts,
                    down_watts=last.down_watts,
                    infra_watts=last.infra_watts,
                    bonus_watts=last.bonus_watts,
                    busy_watts=last.busy_watts,
                )

    def _integrate(self, value_of, t0, t1):
        if t1 <= t0 or not self._samples:
            return 0.0
        times = self._times
        total = 0.0
        i = bisect.bisect_right(times, t0) - 1
        i = max(i, 0)
        t_prev = max(times[i], t0) if times[i] <= t0 else t0
        v_prev = value_of(self._samples[i]) if times[i] <= t0 else value_of(
            self._samples[0]
        )
        for j in range(i + 1, len(times)):
            t = times[j]
            if t >= t1:
                break
            if t > t_prev:
                total += v_prev * (t - t_prev)
                t_prev = t
            v_prev = value_of(self._samples[j])
        total += v_prev * (t1 - t_prev)
        return total

    def energy_joules(self, t0, t1):
        return self._integrate(lambda s: s.power_watts, t0, t1)

    def work_core_seconds(self, t0, t1):
        return self._integrate(lambda s: sum(s.cores_by_freq), t0, t1)

    def job_energy_joules(self, t0, t1):
        return self._integrate(lambda s: s.busy_watts, t0, t1)

    def to_grid(self, t0, t1, dt):
        if dt <= 0 or t1 <= t0:
            raise ValueError("need dt > 0 and t1 > t0")
        grid = np.arange(t0, t1 + dt / 2, dt)
        out = {"time": grid}
        if not self._samples:
            zero = np.zeros_like(grid)
            for ghz in self.frequencies:
                out[f"cores@{ghz:g}"] = zero
            out["off_cores"] = zero
            out["power"] = zero
            out["idle_power"] = zero
            out["bonus"] = zero
            return out
        times = np.array(self._times)
        idx = np.clip(np.searchsorted(times, grid, side="right") - 1, 0, None)
        samples = self._samples
        for k, ghz in enumerate(self.frequencies):
            out[f"cores@{ghz:g}"] = np.array(
                [samples[i].cores_by_freq[k] for i in idx]
            )
        out["off_cores"] = np.array([samples[i].off_cores for i in idx])
        out["power"] = np.array([samples[i].power_watts for i in idx])
        out["idle_power"] = np.array([samples[i].idle_watts for i in idx])
        out["bonus"] = np.array([samples[i].bonus_watts for i in idx])
        return out

    @property
    def samples(self):
        return tuple(self._samples)


# -- stream generation -----------------------------------------------------------------


def _random_stream(rng, n_events, *, t_max=1e5):
    """A recorder-event stream with clustered timestamps (same-instant
    bursts, like the controller produces) and varied magnitudes."""
    times = np.sort(rng.uniform(0.0, t_max, size=n_events))
    # Re-use some timestamps to trigger same-instant collapse.
    dup = rng.random(n_events) < 0.25
    for i in range(1, n_events):
        if dup[i]:
            times[i] = times[i - 1]
    events = []
    for t in times:
        events.append(
            dict(
                time=float(t),
                cores_by_freq=tuple(
                    float(x) for x in rng.integers(0, 2000, size=len(FREQS)) * 16.0
                ),
                off_cores=float(rng.integers(0, 500) * 16),
                power_watts=float(rng.uniform(0, 2.5e6)),
                idle_watts=float(rng.uniform(0, 5e5)),
                down_watts=float(rng.uniform(0, 1e5)),
                infra_watts=float(rng.uniform(0, 4e5)),
                bonus_watts=float(rng.uniform(0, 1e5)),
                busy_watts=float(rng.uniform(0, 2e6)),
            )
        )
    return events


def _fill_both(events, finalize_at=None):
    new = MetricsRecorder(FREQS)
    seed = SeedRecorder(FREQS)
    for ev in events:
        new.sample(**ev)
        seed.sample(**ev)
    if finalize_at is not None:
        new.finalize(finalize_at)
        seed.finalize(finalize_at)
    return new, seed


# -- equivalence on random streams ------------------------------------------------------


@pytest.mark.parametrize("seed_num", [0, 1, 2])
def test_samples_bit_identical(seed_num):
    rng = np.random.default_rng(seed_num)
    events = _random_stream(rng, 400)
    new, seed = _fill_both(events, finalize_at=1.2e5)
    assert new.samples == seed.samples


@pytest.mark.parametrize("seed_num", [0, 1, 2, 3])
def test_integrals_bit_identical(seed_num):
    rng = np.random.default_rng(100 + seed_num)
    events = _random_stream(rng, 600)
    new, seed = _fill_both(events, finalize_at=1.1e5)
    windows = [(0.0, 1.1e5), (0.0, 1.0), (5e4, 5e4 + 1e-3)]
    for _ in range(40):
        a, b = sorted(rng.uniform(-1e4, 1.3e5, size=2))
        windows.append((float(a), float(b)))
    # Windows hitting sample times exactly (the boundary cases).
    ts = new.times
    windows.append((float(ts[3]), float(ts[-2])))
    windows.append((float(ts[0]), float(ts[len(ts) // 2])))
    for t0, t1 in windows:
        assert new.energy_joules(t0, t1) == seed.energy_joules(t0, t1), (t0, t1)
        assert new.work_core_seconds(t0, t1) == seed.work_core_seconds(t0, t1)
        assert new.job_energy_joules(t0, t1) == seed.job_energy_joules(t0, t1)


def test_to_grid_bit_identical():
    rng = np.random.default_rng(7)
    events = _random_stream(rng, 500)
    new, seed = _fill_both(events, finalize_at=1.05e5)
    for t0, t1, dt in [(0.0, 1.05e5, 300.0), (1e4, 9e4, 77.7), (0.0, 500.0, 1.0)]:
        g_new = new.to_grid(t0, t1, dt)
        g_seed = seed.to_grid(t0, t1, dt)
        assert set(g_new) == set(g_seed)
        for key in g_new:
            assert np.array_equal(g_new[key], g_seed[key]), key


def test_grid_before_first_and_after_last_sample():
    events = [
        dict(
            time=100.0,
            cores_by_freq=(0.0,) * len(FREQS),
            off_cores=0.0,
            power_watts=50.0,
            idle_watts=0.0,
            down_watts=0.0,
            infra_watts=0.0,
            bonus_watts=0.0,
            busy_watts=10.0,
        )
    ]
    new, seed = _fill_both(events)
    g_new = new.to_grid(0.0, 400.0, 50.0)
    g_seed = seed.to_grid(0.0, 400.0, 50.0)
    for key in g_new:
        assert np.array_equal(g_new[key], g_seed[key]), key
    assert new.energy_joules(0.0, 400.0) == seed.energy_joules(0.0, 400.0)


def test_growth_past_initial_capacity():
    """Amortised doubling: streams longer than the initial buffer."""
    rng = np.random.default_rng(13)
    events = _random_stream(rng, 3000, t_max=1e6)
    new, seed = _fill_both(events, finalize_at=1.1e6)
    assert new.n_samples == len(seed.samples)
    assert new.samples == seed.samples
    assert new.energy_joules(0.0, 1.1e6) == seed.energy_joules(0.0, 1.1e6)
    assert new.work_core_seconds(12.5, 9.7e5) == seed.work_core_seconds(12.5, 9.7e5)


# -- equivalence on a real replay -------------------------------------------------------


@pytest.fixture(scope="module")
def replay_recorders():
    """The recorder of a real capped replay, mirrored into the seed
    implementation via the identical sample stream."""
    from repro.exp import CapWindow, Scenario, replay_scenario

    HOUR = 3600.0
    sc = Scenario(
        name="columnar-equivalence",
        interval="medianjob",
        policy="MIX",
        scale=1 / 56,
        duration=2 * HOUR,
        caps=(CapWindow(0.5 * HOUR, 1.5 * HOUR, 0.5),),
    )
    result = replay_scenario(sc)
    new = result.recorder
    seed = SeedRecorder(new.frequencies)
    for s in new.samples:
        seed.sample(
            s.time,
            cores_by_freq=s.cores_by_freq,
            off_cores=s.off_cores,
            power_watts=s.power_watts,
            idle_watts=s.idle_watts,
            down_watts=s.down_watts,
            infra_watts=s.infra_watts,
            bonus_watts=s.bonus_watts,
            busy_watts=s.busy_watts,
        )
    return new, seed, result.duration


def test_replay_integrals_bit_identical(replay_recorders):
    new, seed, duration = replay_recorders
    rng = np.random.default_rng(23)
    windows = [(0.0, duration), (0.25 * duration, 0.75 * duration)]
    for _ in range(25):
        a, b = sorted(rng.uniform(0.0, duration, size=2))
        windows.append((float(a), float(b)))
    for t0, t1 in windows:
        assert new.energy_joules(t0, t1) == seed.energy_joules(t0, t1)
        assert new.work_core_seconds(t0, t1) == seed.work_core_seconds(t0, t1)
        assert new.job_energy_joules(t0, t1) == seed.job_energy_joules(t0, t1)


def test_replay_grid_bit_identical(replay_recorders):
    new, seed, duration = replay_recorders
    g_new = new.to_grid(0.0, duration, 300.0)
    g_seed = seed.to_grid(0.0, duration, 300.0)
    assert set(g_new) == set(g_seed)
    for key in g_new:
        assert np.array_equal(g_new[key], g_seed[key]), key


# -- job counters -----------------------------------------------------------------------


def test_launch_and_completion_counters_match_full_scan():
    """The incremental counters agree with a brute-force record scan."""
    rng = np.random.default_rng(5)
    rec = MetricsRecorder(FREQS)
    n = 500
    starts, ends = {}, {}
    now = 0.0
    for jid in range(n):
        now += float(rng.uniform(0.0, 50.0))
        rec.job_submitted(jid, cores=16, n_nodes=1, time=now)
    now = 0.0
    for jid in range(n):
        now += float(rng.uniform(0.0, 30.0))
        if rng.random() < 0.8:
            rec.job_started(jid, now, 2.7, 1.0)
            starts[jid] = now
    now += 1.0
    for jid in list(starts):
        now += float(rng.uniform(0.0, 20.0))
        if rng.random() < 0.7:
            state = "completed" if rng.random() < 0.85 else "killed"
            rec.job_finished(jid, now, state=state)
            ends[jid] = (now, state)

    def brute_launched(t0, t1):
        return sum(1 for s in starts.values() if t0 <= s < t1)

    def brute_completed(t0, t1):
        return sum(
            1 for e, st in ends.values() if st == "completed" and t0 <= e < t1
        )

    horizon = now + 10.0
    for _ in range(60):
        a, b = sorted(rng.uniform(0.0, horizon, size=2))
        assert rec.launched_jobs(a, b) == brute_launched(a, b)
        assert rec.completed_jobs(a, b) == brute_completed(a, b)
    # Degenerate and inverted windows return zero, like the old scan.
    assert rec.launched_jobs(5.0, 5.0) == 0
    assert rec.completed_jobs(9.0, 3.0) == 0


def test_killed_jobs_not_counted_completed():
    rec = MetricsRecorder(FREQS)
    rec.job_submitted(1, cores=16, n_nodes=1, time=0.0)
    rec.job_started(1, 1.0, 2.7, 1.0)
    rec.job_finished(1, 2.0, state="killed")
    assert rec.launched_jobs(0.0, 10.0) == 1
    assert rec.completed_jobs(0.0, 10.0) == 0
