"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.sim.engine import Event, EventKind, SimEngine


class TestScheduling:
    def test_runs_in_time_order(self):
        eng = SimEngine()
        seen = []
        eng.at(5.0, lambda: seen.append(5))
        eng.at(1.0, lambda: seen.append(1))
        eng.at(3.0, lambda: seen.append(3))
        eng.run()
        assert seen == [1, 3, 5]

    def test_same_time_kind_order(self):
        """At equal timestamps, completions precede submissions which
        precede scheduling passes."""
        eng = SimEngine()
        seen = []
        eng.at(1.0, lambda: seen.append("sched"), kind=EventKind.SCHED_PASS)
        eng.at(1.0, lambda: seen.append("submit"), kind=EventKind.JOB_SUBMIT)
        eng.at(1.0, lambda: seen.append("end"), kind=EventKind.JOB_END)
        eng.run()
        assert seen == ["end", "submit", "sched"]

    def test_same_time_same_kind_fifo(self):
        eng = SimEngine()
        seen = []
        for i in range(5):
            eng.at(1.0, lambda i=i: seen.append(i))
        eng.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_after_relative(self):
        eng = SimEngine()
        eng.at(10.0, lambda: eng.after(5.0, lambda: None))
        eng.run()
        assert eng.now == 15.0

    def test_run_until_horizon(self):
        eng = SimEngine()
        seen = []
        eng.at(1.0, lambda: seen.append(1))
        eng.at(100.0, lambda: seen.append(100))
        assert eng.run(until=50.0) == 50.0
        assert seen == [1]
        assert eng.pending_events == 1
        eng.run()
        assert seen == [1, 100]

    def test_events_at_horizon_included(self):
        eng = SimEngine()
        seen = []
        eng.at(50.0, lambda: seen.append(50))
        eng.run(until=50.0)
        assert seen == [50]

    def test_schedule_in_past_rejected(self):
        eng = SimEngine()
        eng.at(10.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.at(5.0, lambda: None)
        with pytest.raises(ValueError):
            eng.after(-1.0, lambda: None)
        with pytest.raises(ValueError):
            eng.at(math.nan, lambda: None)

    def test_cancellation(self):
        eng = SimEngine()
        seen = []
        ev = eng.at(1.0, lambda: seen.append("cancelled"))
        eng.at(2.0, lambda: seen.append("kept"))
        SimEngine.cancel(ev)
        eng.run()
        assert seen == ["kept"]
        assert eng.processed_events == 1

    def test_step(self):
        eng = SimEngine()
        seen = []
        eng.at(1.0, lambda: seen.append(1))
        eng.at(2.0, lambda: seen.append(2))
        assert eng.step() and seen == [1]
        assert eng.step() and seen == [1, 2]
        assert not eng.step()

    def test_events_scheduled_during_run_execute(self):
        eng = SimEngine()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                eng.after(1.0, lambda: chain(depth + 1))

        eng.at(0.0, lambda: chain(0))
        eng.run()
        assert seen == [0, 1, 2, 3]
        assert eng.now == 3.0

    def test_determinism(self):
        def run_once():
            eng = SimEngine()
            seen = []
            for i in range(100):
                eng.at((i * 37) % 10, lambda i=i: seen.append(i))
            eng.run()
            return seen

        assert run_once() == run_once()


class TestCancellationAccounting:
    def test_pending_events_is_tracked_not_scanned(self):
        eng = SimEngine()
        events = [eng.at(float(i + 1), lambda: None) for i in range(10)]
        assert eng.pending_events == 10
        for ev in events[:4]:
            SimEngine.cancel(ev)
        assert eng.pending_events == 6
        # Double-cancel does not double-count.
        SimEngine.cancel(events[0])
        assert eng.pending_events == 6

    def test_cancel_after_run_is_noop(self):
        eng = SimEngine()
        seen = []
        ev = eng.at(1.0, lambda: seen.append(1))
        eng.run()
        assert seen == [1]
        SimEngine.cancel(ev)
        assert eng.pending_events == 0

    def test_heap_compacts_when_mostly_cancelled(self):
        eng = SimEngine()
        events = [eng.at(float(i + 1), lambda: None) for i in range(200)]
        for ev in events[:150]:
            SimEngine.cancel(ev)
        # Compaction reclaimed dead entries: without it the heap would
        # still hold all 200 events.
        assert len(eng._queue) <= 100
        assert eng.pending_events == 50
        eng.run()
        assert eng.processed_events == 50

    def test_cancellation_with_compaction_preserves_order(self):
        def run_once(compact):
            eng = SimEngine()
            if not compact:
                eng._COMPACT_MIN = 10**9  # never compact
            seen = []
            events = []
            for i in range(300):
                events.append(eng.at((i * 13) % 7 + 1.0, lambda i=i: seen.append(i)))
            for i in range(0, 300, 2):
                SimEngine.cancel(events[i])
            eng.run()
            return seen

        assert run_once(compact=True) == run_once(compact=False)

    def test_run_until_with_cancelled_head(self):
        """A cancelled event below the horizon must not drag later live
        events across it."""
        eng = SimEngine()
        seen = []
        ev = eng.at(1.0, lambda: seen.append(1))
        eng.at(100.0, lambda: seen.append(100))
        SimEngine.cancel(ev)
        eng.run(until=50.0)
        assert seen == []
        assert eng.pending_events == 1
        eng.run()
        assert seen == [100]


class TestDrainedClock:
    """Regression: ``run(until)`` used to clamp the clock up to the
    horizon even after the queue drained, so a drained engine reported
    a ``now`` at which nothing ever happened."""

    def test_drained_run_stops_at_last_event(self):
        eng = SimEngine()
        eng.at(3.0, lambda: None)
        assert eng.run(until=10.0) == 3.0
        assert eng.now == 3.0

    def test_empty_run_does_not_advance(self):
        eng = SimEngine()
        assert eng.run(until=5.0) == 0.0
        assert eng.now == 0.0

    def test_repeated_horizons_after_drain(self):
        eng = SimEngine()
        eng.at(3.0, lambda: None)
        eng.run(until=10.0)
        # Later, wider horizons still must not move a drained clock.
        assert eng.run(until=20.0) == 3.0
        assert eng.run() == 3.0

    def test_horizon_with_pending_still_reached(self):
        eng = SimEngine()
        eng.at(3.0, lambda: None)
        eng.at(100.0, lambda: None)
        assert eng.run(until=10.0) == 10.0
        assert eng.pending_events == 1


class TestRunBefore:
    def test_events_at_horizon_stay_pending(self):
        eng = SimEngine()
        seen = []
        eng.at(1.0, lambda: seen.append(1))
        eng.at(5.0, lambda: seen.append(5))
        eng.at(9.0, lambda: seen.append(9))
        assert eng.run_before(5.0) == 1.0
        assert seen == [1]
        assert eng.pending_events == 2
        eng.run()
        assert seen == [1, 5, 9]

    def test_clock_not_clamped_to_horizon(self):
        eng = SimEngine()
        eng.at(1.0, lambda: None)
        eng.run_before(50.0)
        assert eng.now == 1.0

    def test_cancelled_head_below_horizon_discarded(self):
        eng = SimEngine()
        seen = []
        ev = eng.at(1.0, lambda: seen.append(1))
        eng.at(5.0, lambda: seen.append(5))
        SimEngine.cancel(ev)
        eng.run_before(5.0)
        assert seen == []
        assert eng.pending_events == 1

    def test_next_event_time_skips_cancelled(self):
        eng = SimEngine()
        ev = eng.at(1.0, lambda: None)
        eng.at(2.0, lambda: None)
        SimEngine.cancel(ev)
        assert eng.next_event_time == 2.0
        assert eng.pending_events == 1
        eng.run()
        assert eng.next_event_time is None


class TestCancellationEdges:
    def test_cancel_during_own_callback_is_noop(self):
        """An event that cancels itself from its own callback has
        already left the queue — the cancel must not corrupt the
        cancellation count."""
        eng = SimEngine()
        seen = []
        holder: list[Event] = []
        def self_cancel():
            seen.append("ran")
            SimEngine.cancel(holder[0])
        holder.append(eng.at(1.0, self_cancel))
        eng.at(2.0, lambda: seen.append("later"))
        assert eng.step()
        assert seen == ["ran"]
        assert eng.pending_events == 1
        assert eng._n_cancelled == 0
        eng.run()
        assert seen == ["ran", "later"]
        assert eng.processed_events == 2

    def test_cancel_of_event_popped_by_run_is_noop(self):
        eng = SimEngine()
        popped: list[Event] = []
        a = eng.at(1.0, lambda: popped.append(a))
        eng.at(2.0, lambda: SimEngine.cancel(popped[0]))
        eng.at(3.0, lambda: None)
        eng.run()
        assert eng.processed_events == 3
        assert eng._n_cancelled == 0

    def test_compaction_triggers_exactly_at_majority(self):
        eng = SimEngine()
        n = SimEngine._COMPACT_MIN  # 64
        events = [eng.at(float(i + 1), lambda: None) for i in range(n)]
        for ev in events[: n // 2]:
            SimEngine.cancel(ev)
        # 32 of 64 cancelled: not a strict majority, no compaction yet.
        assert len(eng._queue) == n
        assert eng._n_cancelled == n // 2
        SimEngine.cancel(events[n // 2])
        # 33 of 64: strict majority — compacted down to the live set.
        assert len(eng._queue) == n - (n // 2 + 1)
        assert eng._n_cancelled == 0
        assert eng.pending_events == n - (n // 2 + 1)

    def test_no_compaction_below_min_queue_size(self):
        eng = SimEngine()
        events = [eng.at(float(i + 1), lambda: None) for i in range(10)]
        for ev in events[:9]:
            SimEngine.cancel(ev)
        assert len(eng._queue) == 10  # tiny queue: lazy deletion only
        assert eng.pending_events == 1

    def test_compaction_at_threshold_preserves_tie_order(self):
        """Cancelling exactly to the compaction threshold mid-tie must
        not reorder the surviving same-time events."""
        def run_once(compact):
            eng = SimEngine()
            if not compact:
                eng._COMPACT_MIN = 10**9
            seen = []
            events = [eng.at(1.0, lambda i=i: seen.append(i)) for i in range(64)]
            for i in range(33):  # exactly one past the majority tip
                SimEngine.cancel(events[2 * i % 64])
            eng.run()
            return seen

        with_compact = run_once(compact=True)
        without = run_once(compact=False)
        assert with_compact == without
        assert with_compact == sorted(with_compact)

    def test_pending_events_consistent_across_interleavings(self):
        eng = SimEngine()
        events = [eng.at(float(i % 7 + 1), lambda: None) for i in range(100)]
        def live():
            return sum(
                1 for e in eng._queue if not e.cancelled
            )
        for i in range(0, 100, 3):
            SimEngine.cancel(events[i])
            assert eng.pending_events == live()
        for _ in range(10):
            eng.step()
            assert eng.pending_events == live()
        eng._compact()
        assert eng.pending_events == live()
        eng.run(until=4.0)
        assert eng.pending_events == live()
        eng.run()
        assert eng.pending_events == 0 and live() == 0
