"""End-to-end replay tests: the paper's methodology invariants."""

import math

import pytest

from repro.cluster.curie import curie_machine
from repro.rjms.config import SchedulerConfig
from repro.sim.replay import ReplayResult, powercap_reservation, run_replay
from repro.workload.intervals import generate_interval
from repro.workload.spec import JobSpec

HOUR = 3600.0


@pytest.fixture(scope="module")
def machine():
    return curie_machine(scale=1 / 56)


@pytest.fixture(scope="module")
def jobs(machine):
    return generate_interval(machine, "medianjob")


@pytest.fixture(scope="module")
def baseline(machine, jobs) -> ReplayResult:
    return run_replay(machine, jobs, "NONE", duration=5 * HOUR)


def mid_cap(machine, fraction):
    return [powercap_reservation(machine, fraction, 2 * HOUR, 3 * HOUR)]


class TestBaseline:
    def test_high_utilization_without_cap(self, baseline):
        # The intervals are chosen overloaded: the machine saturates.
        assert baseline.work_normalized() > 0.9

    def test_energy_between_idle_floor_and_max(self, baseline, machine):
        floor = machine.idle_power() / machine.max_power()
        assert floor <= baseline.energy_normalized() <= 1.0 + 1e-9

    def test_launched_jobs_positive(self, baseline):
        assert 0 < baseline.launched_jobs() <= baseline.n_submitted

    def test_summary_keys(self, baseline):
        s = baseline.summary()
        assert set(s) == {
            "energy_joules",
            "job_energy_joules",
            "work_core_seconds",
            "launched_jobs",
            "energy_norm",
            "work_norm",
            "effective_work_norm",
            "jobs_norm",
        }

    def test_effective_work_equals_work_without_dvfs(self, baseline):
        # NONE never slows jobs: raw and corrected work coincide.
        assert baseline.effective_work_normalized() == pytest.approx(
            baseline.work_normalized(), rel=1e-6
        )

    def test_job_energy_below_total(self, baseline):
        assert baseline.job_energy_joules() < baseline.energy_joules()


class TestDeterminism:
    def test_same_inputs_same_outputs(self, machine, jobs):
        a = run_replay(machine, jobs, "MIX", duration=HOUR, powercaps=mid_cap(machine, 0.6))
        b = run_replay(machine, jobs, "MIX", duration=HOUR, powercaps=mid_cap(machine, 0.6))
        assert a.summary() == b.summary()


class TestCapEffects:
    @pytest.mark.parametrize("policy", ["SHUT", "DVFS", "MIX", "IDLE"])
    def test_capped_work_below_baseline(self, machine, jobs, baseline, policy):
        r = run_replay(
            machine, jobs, policy, duration=5 * HOUR, powercaps=mid_cap(machine, 0.4)
        )
        assert r.work_normalized() <= baseline.work_normalized() + 0.05
        assert r.energy_normalized() < baseline.energy_normalized()

    def test_shut_respects_cap_inside_window(self, machine, jobs):
        """SHUT plans shutdowns so the worst case fits: with the cap
        active from t=0 the power never exceeds it."""
        cap = [powercap_reservation(machine, 0.6, 0.0, math.inf)]
        r = run_replay(machine, jobs, "SHUT", duration=HOUR, powercaps=cap)
        grid = r.recorder.to_grid(0.0, HOUR, 60.0)
        assert (grid["power"] <= cap[0].watts * (1 + 1e-9)).all()

    def test_dvfs_respects_active_cap_from_start(self, machine, jobs):
        cap = [powercap_reservation(machine, 0.6, 0.0, math.inf)]
        r = run_replay(machine, jobs, "DVFS", duration=HOUR, powercaps=cap)
        grid = r.recorder.to_grid(0.0, HOUR, 60.0)
        assert (grid["power"] <= cap[0].watts * (1 + 1e-9)).all()

    def test_work_monotone_in_cap(self, machine, jobs):
        """Work and energy decrease as the cap tightens (paper VII-C)."""
        results = {
            frac: run_replay(
                machine, jobs, "SHUT", duration=5 * HOUR,
                powercaps=mid_cap(machine, frac),
            )
            for frac in (0.8, 0.4)
        }
        assert results[0.4].work_normalized() <= results[0.8].work_normalized() + 0.02
        assert results[0.4].energy_normalized() < results[0.8].energy_normalized()

    def test_shutdown_area_appears_in_series(self, machine, jobs):
        r = run_replay(
            machine, jobs, "SHUT", duration=5 * HOUR, powercaps=mid_cap(machine, 0.4)
        )
        grid = r.recorder.to_grid(0.0, 5 * HOUR, 60.0)
        in_window = (grid["time"] >= 2 * HOUR) & (grid["time"] < 3 * HOUR)
        out_window = grid["time"] < HOUR
        assert grid["off_cores"][in_window].max() > 0
        assert grid["off_cores"][out_window].max() == 0
        # The grouped shutdown harvests a visible power bonus.
        assert grid["bonus"][in_window].max() > 0

    def test_dvfs_jobs_run_at_lower_frequencies(self, machine, jobs):
        r = run_replay(
            machine, jobs, "DVFS", duration=5 * HOUR, powercaps=mid_cap(machine, 0.4)
        )
        freqs = {
            rec.freq_ghz
            for rec in r.recorder.jobs.values()
            if rec.freq_ghz is not None
        }
        assert 1.2 in freqs  # throttled jobs exist
        assert 2.7 in freqs  # and unconstrained ones too

    def test_utilization_rebounds_after_window(self, machine, jobs):
        """Section VII-C: utilisation returns to ~100% right after the
        powercap interval."""
        r = run_replay(
            machine, jobs, "SHUT", duration=5 * HOUR, powercaps=mid_cap(machine, 0.6)
        )
        grid = r.recorder.to_grid(0.0, 5 * HOUR, 60.0)
        total_cores = machine.total_cores
        after = grid["time"] >= 3.25 * HOUR
        busy = sum(grid[f"cores@{g:g}"] for g in machine.freq_table.frequencies)
        assert busy[after].mean() > 0.85 * total_cores


class TestValidation:
    def test_rejects_nonpositive_duration(self, machine, jobs):
        with pytest.raises(ValueError):
            run_replay(machine, jobs, "NONE", duration=0.0)

    def test_cap_fraction_validated(self, machine):
        with pytest.raises(ValueError):
            powercap_reservation(machine, 0.0, 0.0)
        with pytest.raises(ValueError):
            powercap_reservation(machine, 1.5, 0.0)

    def test_submissions_after_horizon_ignored(self, machine):
        specs = [
            JobSpec(1, 0.0, 16, 10.0, 3600.0),
            JobSpec(2, 10 * HOUR, 16, 10.0, 3600.0),
        ]
        r = run_replay(machine, specs, "NONE", duration=HOUR)
        assert r.n_submitted == 1
