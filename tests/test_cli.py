"""CLI smoke tests: the argparse entry points end to end.

Everything drives :func:`repro.cli.main` exactly as a shell would,
on tiny scenarios (90-node machine, two-hour replays) so the whole
module stays in the quick loop.
"""

import pytest

from repro.cli import main

TINY = ["--scale", "0.017857", "--duration", "2"]
#: library scenarios keep their absolute window placement ([2h, 3h)
#: for paper cells), so named runs need a 3-hour replay to cover it
TINY_NAMED = ["--scale", "0.017857", "--duration", "3"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestListings:
    def test_exp_list_renders_the_library(self, capsys):
        code, out = run_cli(capsys, "exp", "list")
        assert code == 0
        assert "fig6-24h-mix-40" in out
        assert "medianjob-adaptive-60" in out

    def test_exp_list_names_only(self, capsys):
        code, out = run_cli(capsys, "exp", "list", "--names")
        assert code == 0
        lines = out.strip().splitlines()
        from repro.exp import scenario_names

        assert lines == scenario_names()

    def test_exp_platforms(self, capsys):
        code, out = run_cli(capsys, "exp", "platforms")
        assert code == 0
        for name in ("curie", "fatnode", "manythin"):
            assert name in out

    def test_exp_policies(self, capsys):
        code, out = run_cli(capsys, "exp", "policies")
        assert code == 0
        for name in ("NONE", "IDLE", "SHUT", "DVFS", "MIX", "ADAPTIVE", "TRACK"):
            assert name in out
        assert "grouped" in out and "track" in out

    def test_exp_policies_names_only(self, capsys):
        code, out = run_cli(capsys, "exp", "policies", "--names")
        from repro.policy import policy_names

        assert code == 0
        assert out.strip().splitlines() == policy_names()


class TestExpRun:
    def test_serial_grid_run_prints_table(self, capsys):
        code, out = run_cli(
            capsys,
            "exp", "run",
            "--grid", "policy=SHUT,ADAPTIVE", "cap=0.6",
            "--backend", "serial",
            *TINY,
        )
        assert code == 0
        assert "running 2 scenario(s)" in out
        assert "backend serial" in out
        assert "medianjob-shut-60" in out
        assert "medianjob-adaptive-60" in out
        assert "ADAPT" in out  # the results table renders registry names

    def test_store_round_trip_serves_cache(self, capsys, tmp_path):
        store = f"dir:{tmp_path}"
        args = [
            "exp", "run",
            "--scenario", "medianjob-track-60",
            "--backend", "serial",
            "--store", store,
            *TINY_NAMED,
        ]
        code, first = run_cli(capsys, *args)
        assert code == 0 and "(cache)" not in first
        code, second = run_cli(capsys, *args)
        assert code == 0 and "(cache)" in second

    def test_unknown_scenario_lists_library(self, capsys):
        with pytest.raises(SystemExit, match="fig6-24h-mix-40"):
            main(["exp", "run", "--scenario", "nope"])

    def test_unknown_policy_in_grid_lists_registry(self, capsys):
        with pytest.raises(SystemExit, match="ADAPTIVE"):
            main(["exp", "run", "--grid", "policy=TURBO"])


class TestPolicyErrors:
    def test_replay_unknown_policy_lists_registry(self, capsys):
        with pytest.raises(SystemExit, match="unknown policy 'TURBO'"):
            main(["replay", "--policy", "TURBO"])

    def test_model_unknown_policy_lists_registry(self, capsys):
        with pytest.raises(SystemExit, match="ADAPTIVE"):
            main(["model", "--policy", "TURBO", "--cap", "0.6"])

    def test_model_accepts_registry_policies(self, capsys):
        code, out = run_cli(
            capsys,
            "model", "--policy", "ADAPTIVE", "--cap", "0.6", "--scale", "0.017857",
        )
        assert code == 0
        assert "model case" in out


class TestFaultTolerance:
    #: seed 1 at rate 1.0 plans a *transient* fault for the single
    #: medianjob-track-60 cell (pinned by the scenario hash, which the
    #: golden-digest suite already locks down)
    ARMED = ["--inject-faults", "seed:1:1.0:1", "--max-retries", "2"]

    def test_injected_transient_retries_to_success(self, capsys):
        code, out = run_cli(
            capsys,
            "exp", "run", "--scenario", "medianjob-track-60",
            "--backend", "serial", *self.ARMED, *TINY_NAMED,
        )
        assert code == 0
        assert "fault plan armed: 1 fault(s) (transientx1)" in out
        assert "1 retry" in out

    def test_poison_quarantine_failures_heal_cycle(self, capsys, tmp_path):
        base = [
            "exp", "run", "--scenario", "medianjob-track-60",
            "--backend", "serial", "--cache-dir", str(tmp_path),
            *TINY_NAMED,
        ]
        code, out = run_cli(
            capsys, *base,
            "--inject-faults", "seed:1:1.0:*",  # poison: fires every attempt
            "--max-retries", "1", "--on-error", "quarantine",
        )
        assert code == 0  # quarantined losses are accounted for
        assert "quarantined: medianjob-track-60" in out

        code, out = run_cli(capsys, "exp", "failures", "--cache-dir", str(tmp_path))
        assert code == 1
        assert "medianjob-track-60" in out and "quarantined" in out

        code, out = run_cli(capsys, *base)  # fault-free re-run heals
        assert code == 0 and "1 healed" in out

        code, out = run_cli(capsys, "exp", "failures", "--cache-dir", str(tmp_path))
        assert code == 0 and "no failure records" in out

    def test_bad_fault_spec_exits(self, capsys):
        with pytest.raises(SystemExit, match="error:"):
            main([
                "exp", "run", "--scenario", "medianjob-track-60",
                "--inject-faults", "bogus", *TINY_NAMED,
            ])

    def test_on_error_rejects_unknown_mode(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "exp", "run", "--scenario", "medianjob-track-60",
                "--on-error", "explode", *TINY_NAMED,
            ])

    def test_failures_requires_exactly_one_store(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["exp", "failures"])
        with pytest.raises(SystemExit, match="exactly one"):
            main([
                "exp", "failures",
                "--store", f"dir:{tmp_path}", "--cache-dir", str(tmp_path),
            ])

    def test_failures_rejects_memory_store(self, capsys):
        with pytest.raises(SystemExit, match="persist"):
            main(["exp", "failures", "--store", "memory"])


class TestStorePrune:
    def _fill(self, capsys, tmp_path, names):
        for name in names:
            code, _ = run_cli(
                capsys,
                "exp", "run", "--scenario", name,
                "--backend", "serial", "--cache-dir", str(tmp_path),
                *TINY_NAMED,
            )
            assert code == 0

    def test_prune_evicts_oldest_beyond_cap(self, capsys, tmp_path):
        self._fill(
            capsys, tmp_path, ["medianjob-adaptive-60", "medianjob-track-60"]
        )
        assert len(list(tmp_path.glob("*.json"))) == 2
        code, out = run_cli(
            capsys,
            "exp", "store", "prune",
            "--cache-dir", str(tmp_path),
            "--max-entries", "1",
            "--verbose",
        )
        assert code == 0
        assert "pruned 1 entry" in out
        assert "evicted" in out
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_prune_noop_under_cap(self, capsys, tmp_path):
        code, out = run_cli(
            capsys,
            "exp", "store", "prune",
            "--store", f"dir:{tmp_path}",
            "--max-entries", "5",
        )
        assert code == 0
        assert "pruned 0 entries" in out

    def test_prune_requires_exactly_one_store(self, capsys, tmp_path):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["exp", "store", "prune", "--max-entries", "1"])
        with pytest.raises(SystemExit, match="exactly one"):
            main([
                "exp", "store", "prune", "--max-entries", "1",
                "--store", f"dir:{tmp_path}", "--cache-dir", str(tmp_path),
            ])
