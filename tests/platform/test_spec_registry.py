"""Platform registry: spec validation, serialisation, Curie fidelity.

The registry's core promise is that re-expressing Curie as a
:class:`PlatformSpec` changed nothing: every constant matches
:mod:`repro.cluster.curie` verbatim, the built machine matches
:func:`curie_machine`, and the policy set matches ``CURIE_POLICIES``.
(The trace-level consequence is pinned by the golden digests in
``tests/exp/test_determinism.py``.)
"""

import dataclasses

import pytest

from repro.cluster.curie import (
    CURIE_BENCHMARK_DEGMIN,
    CURIE_DEGMIN_FULL_RANGE,
    CURIE_DEGMIN_MIX_RANGE,
    CURIE_FREQUENCY_TABLE,
    CURIE_MIX_MIN_GHZ,
    CURIE_TOPOLOGY,
    curie_machine,
)
from repro.core.policies import (
    CURIE_POLICIES,
    DEFAULT_DEGMIN_FULL_RANGE,
    DEFAULT_DEGMIN_MIX_RANGE,
    DEFAULT_MIX_MIN_GHZ,
)
from repro.platform import (
    BUILTIN_PLATFORMS,
    CURIE_PLATFORM,
    PlatformSpec,
    get_platform,
    platform_names,
    platform_specs,
    register_platform,
    unregister_platform,
)
from repro.workload.synthetic import CURIE_TOTAL_CORES


def _spec_kwargs(**overrides):
    """A small valid spec to mutate in validation tests."""
    kw = dict(
        name="testbox",
        nodes_per_chassis=4,
        chassis_per_rack=2,
        racks=3,
        chassis_watts=100.0,
        rack_watts=300.0,
        cores_per_node=8,
        idle_watts=50.0,
        down_watts=5.0,
        freq_watts=((1.0, 80.0), (1.5, 100.0), (2.0, 130.0)),
        degmin_full_range=1.5,
        degmin_mix_range=1.2,
        mix_min_ghz=1.5,
    )
    kw.update(overrides)
    return kw


class TestCurieFidelity:
    def test_first_registry_entry_is_curie(self):
        assert platform_names()[0] == "curie"
        assert get_platform("curie") is CURIE_PLATFORM

    def test_constants_verbatim(self):
        pf = CURIE_PLATFORM
        assert pf.frequency_table() == CURIE_FREQUENCY_TABLE
        assert pf.nodes_per_chassis == CURIE_TOPOLOGY.nodes_per_chassis
        assert pf.chassis_per_rack == CURIE_TOPOLOGY.chassis_per_rack
        assert pf.racks == CURIE_TOPOLOGY.racks
        assert pf.chassis_watts == CURIE_TOPOLOGY.chassis_watts
        assert pf.rack_watts == CURIE_TOPOLOGY.rack_watts
        assert pf.down_watts == CURIE_TOPOLOGY.node_down_watts
        assert pf.degmin_full_range == CURIE_DEGMIN_FULL_RANGE
        assert pf.degmin_mix_range == CURIE_DEGMIN_MIX_RANGE
        assert pf.mix_min_ghz == CURIE_MIX_MIN_GHZ
        assert dict(pf.benchmark_degmin) == CURIE_BENCHMARK_DEGMIN
        assert pf.full_machine_cores == CURIE_TOTAL_CORES
        assert pf.workload_reference_cores == CURIE_TOTAL_CORES
        assert pf.workload_classes == ()  # paper mixes apply unchanged

    def test_policy_defaults_match_curie_constants(self):
        """core.policies no longer imports cluster.curie; its local
        paper defaults must stay equal to the Curie entry's values."""
        assert DEFAULT_DEGMIN_FULL_RANGE == CURIE_DEGMIN_FULL_RANGE
        assert DEFAULT_DEGMIN_MIX_RANGE == CURIE_DEGMIN_MIX_RANGE
        assert DEFAULT_MIX_MIN_GHZ == CURIE_MIX_MIN_GHZ

    @pytest.mark.parametrize("scale", [1.0, 0.125, 1 / 56])
    def test_build_machine_matches_curie_machine(self, scale):
        a = CURIE_PLATFORM.build_machine(scale=scale)
        b = curie_machine(scale=scale)
        assert a.name == b.name
        assert a.n_nodes == b.n_nodes
        assert a.total_cores == b.total_cores
        assert a.freq_table == b.freq_table
        assert a.max_power() == b.max_power()
        assert a.idle_power() == b.idle_power()
        assert (
            a.topology.bonus_figure_rows(a.freq_table.max.watts)
            == b.topology.bonus_figure_rows(b.freq_table.max.watts)
        )

    def test_policies_match_curie_policies(self):
        table = CURIE_FREQUENCY_TABLE
        ours = CURIE_PLATFORM.policies(table)
        legacy = CURIE_POLICIES(table)
        assert set(ours) == set(legacy)
        for name in ours:
            assert ours[name] == legacy[name], name


class TestBuiltinPlatforms:
    def test_registry_contains_builtins(self):
        names = platform_names()
        for pf in BUILTIN_PLATFORMS:
            assert pf.name in names
        assert len({pf.content_hash() for pf in BUILTIN_PLATFORMS}) == len(
            BUILTIN_PLATFORMS
        )

    @pytest.mark.parametrize("pf", BUILTIN_PLATFORMS, ids=lambda p: p.name)
    def test_roundtrip_preserves_identity(self, pf):
        back = PlatformSpec.from_dict(pf.to_dict())
        assert back == pf
        assert back.content_hash() == pf.content_hash()

    @pytest.mark.parametrize("pf", BUILTIN_PLATFORMS, ids=lambda p: p.name)
    def test_machine_and_policies_construct(self, pf):
        machine = pf.build_machine(scale=0.5)
        assert machine.n_nodes > 0
        policies = pf.policies(machine.freq_table)
        assert set(policies) == {"NONE", "IDLE", "SHUT", "DVFS", "MIX"}
        assert policies["DVFS"].degmin == pf.degmin_full_range
        assert policies["MIX"].degmin == pf.degmin_mix_range
        assert policies["MIX"].allowed.min.ghz >= pf.mix_min_ghz

    def test_description_excluded_from_content_hash(self):
        pf = BUILTIN_PLATFORMS[1]
        relabelled = dataclasses.replace(pf, description="different words")
        assert relabelled.content_hash() == pf.content_hash()
        renamed = dataclasses.replace(pf, name="other")
        assert renamed.content_hash() != pf.content_hash()

    def test_workload_class_overrides_resolve(self):
        fat = get_platform("fatnode")
        assert fat.interval_classes("medianjob") is not None
        assert fat.interval_classes("bigjob") is None
        thin = get_platform("manythin")
        assert thin.interval_classes("smalljob") is not None


class TestValidation:
    def test_non_monotone_power_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec(
                **_spec_kwargs(freq_watts=((1.0, 120.0), (1.5, 100.0)))
            )

    def test_down_above_idle_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec(**_spec_kwargs(down_watts=60.0))

    def test_mix_range_must_hold_a_step(self):
        with pytest.raises(ValueError):
            PlatformSpec(**_spec_kwargs(mix_min_ghz=2.5))

    def test_degmin_below_one_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec(**_spec_kwargs(degmin_full_range=0.9))

    def test_bad_topology_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec(**_spec_kwargs(racks=0))

    def test_bad_cores_per_node_rejected(self):
        with pytest.raises(ValueError, match="cores_per_node"):
            PlatformSpec(**_spec_kwargs(cores_per_node=0))

    def test_unknown_dict_key_rejected(self):
        d = PlatformSpec(**_spec_kwargs()).to_dict()
        d["colour"] = "red"
        with pytest.raises(ValueError, match="colour"):
            PlatformSpec.from_dict(d)


class TestRegistry:
    def test_get_unknown_lists_available(self):
        with pytest.raises(KeyError, match="available"):
            get_platform("no-such-platform")

    def test_register_is_idempotent_but_guards_conflicts(self):
        spec = PlatformSpec(**_spec_kwargs(name="ephemeral"))
        try:
            register_platform(spec)
            assert get_platform("ephemeral") == spec
            register_platform(spec)  # identical content: no-op
            conflicting = dataclasses.replace(spec, idle_watts=51.0)
            with pytest.raises(ValueError, match="already registered"):
                register_platform(conflicting)
            register_platform(conflicting, replace=True)
            assert get_platform("ephemeral").idle_watts == 51.0
        finally:
            unregister_platform("ephemeral")
        assert "ephemeral" not in platform_names()

    def test_specs_listing_matches_names(self):
        assert [pf.name for pf in platform_specs()] == platform_names()
