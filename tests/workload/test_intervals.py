"""Unit tests for interval extraction from full traces."""

import pytest

from repro.workload.intervals import (
    HOUR,
    IntervalSpec,
    extract_interval,
    find_interval_start,
)
from repro.workload.spec import JobSpec


def mkjob(job_id, submit, cores=16, runtime=60.0):
    return JobSpec(job_id, submit, cores, runtime, 86400.0)


@pytest.fixture
def trace():
    # 48 hours of submissions: small/short early, big late.
    jobs = []
    jid = 0
    for h in range(48):
        for k in range(10):
            jid += 1
            if h < 24:
                jobs.append(mkjob(jid, h * HOUR + k * 60, cores=4, runtime=30))
            else:
                jobs.append(mkjob(jid, h * HOUR + k * 60, cores=2048, runtime=7200))
    return jobs


class TestExtractInterval:
    def test_window_shifted_to_zero(self, trace):
        window = extract_interval(trace, 10 * HOUR, 5 * HOUR, backlog_window=0)
        assert window
        assert min(j.submit_time for j in window) < HOUR
        assert max(j.submit_time for j in window) < 5 * HOUR

    def test_backlog_requeued_at_zero(self, trace):
        window = extract_interval(trace, 10 * HOUR, 5 * HOUR, backlog_window=2 * HOUR)
        backlog = [j for j in window if j.submit_time == 0.0]
        # 2 hours of 10 jobs/h arrive before the window, plus the jobs
        # submitted exactly at window start.
        assert len(backlog) >= 20

    def test_jobs_outside_excluded(self, trace):
        window = extract_interval(trace, 10 * HOUR, HOUR, backlog_window=0)
        assert all(j.submit_time < HOUR for j in window)
        assert len(window) == 10

    def test_sorted_output(self, trace):
        window = extract_interval(trace, 5 * HOUR, 5 * HOUR)
        submits = [j.submit_time for j in window]
        assert submits == sorted(submits)

    def test_rejects_bad_args(self, trace):
        with pytest.raises(ValueError):
            extract_interval(trace, 0, 0)
        with pytest.raises(ValueError):
            extract_interval(trace, 0, 10, backlog_window=-1)


class TestFindIntervalStart:
    def test_smalljob_picks_small_region(self, trace):
        s = find_interval_start(trace, 5 * HOUR, kind="smalljob")
        assert s < 24 * HOUR

    def test_bigjob_picks_big_region(self, trace):
        s = find_interval_start(trace, 5 * HOUR, kind="bigjob")
        assert s >= 19 * HOUR  # a 5h window starting here reaches the big half

    def test_unknown_kind_rejected(self, trace):
        with pytest.raises(ValueError):
            find_interval_start(trace, HOUR, kind="nope")

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            find_interval_start([], HOUR)


class TestIntervalSpec:
    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            IntervalSpec("x", 0.0)
