"""Unit tests for the SWF reader/writer."""

import io

import pytest

from repro.workload.swf import (
    SWFJob,
    SWFTrace,
    loads_swf,
    parse_swf_line,
    read_swf,
    swf_to_jobspecs,
    write_swf,
)

SAMPLE = """\
; Version: 2.2
; Computer: Bullx B510
; MaxProcs: 80640
; UnixStartTime: 1330560000
; this line is a free comment without structure
1 0 10 120 512 -1 -1 512 86400 -1 1 3 1 -1 1 -1 -1 -1
2 5 0 30 16 -1 -1 16 3600 -1 1 4 1 -1 1 -1 -1 -1
3 9 2 0 32 -1 -1 32 3600 -1 0 4 1 -1 1 -1 -1 -1
4 12 1 600 -1 -1 -1 128 7200 -1 1 5 1 -1 1 -1 -1 -1
"""


class TestParse:
    def test_parses_jobs_and_header(self):
        trace = loads_swf(SAMPLE)
        assert len(trace) == 4
        assert trace.header["MaxProcs"] == "80640"
        assert trace.header["Computer"] == "Bullx B510"
        assert trace.max_procs == 80640
        assert any("free comment" in c for c in trace.comments)

    def test_field_values(self):
        trace = loads_swf(SAMPLE)
        j = trace.jobs[0]
        assert j.job_number == 1
        assert j.submit_time == 0
        assert j.wait_time == 10
        assert j.run_time == 120
        assert j.allocated_procs == 512
        assert j.requested_time == 86400
        assert j.user_id == 3

    def test_short_line_padded_with_unknown(self):
        j = parse_swf_line("7 100 5 60 8")
        assert j.job_number == 7
        assert j.requested_procs == -1
        assert j.status == -1

    def test_too_many_fields_rejected(self):
        with pytest.raises(ValueError, match="fields"):
            parse_swf_line(" ".join(["1"] * 19))

    def test_garbage_field_rejected(self):
        with pytest.raises(ValueError, match="bad SWF field"):
            parse_swf_line("1 0 x 120 512")

    def test_bad_line_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            loads_swf("1 0 1 10 4\nnot a job\n")

    def test_empty_lines_skipped(self):
        trace = loads_swf("\n\n1 0 1 10 4\n\n")
        assert len(trace) == 1

    def test_max_procs_absent(self):
        assert loads_swf("1 0 1 10 4\n").max_procs is None


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        trace = loads_swf(SAMPLE)
        path = tmp_path / "out.swf"
        write_swf(trace, path)
        again = read_swf(path)
        assert again.jobs == trace.jobs
        assert again.header == trace.header

    def test_write_iterable_of_jobs(self):
        jobs = [SWFJob(1, 0, 0, 10, 4), SWFJob(2, 5, 1, 20, 8)]
        buf = io.StringIO()
        write_swf(jobs, buf)
        assert loads_swf(buf.getvalue()).jobs == jobs

    def test_float_fields_preserved(self):
        job = SWFJob(1, 0.5, 0, 10.25, 4)
        again = parse_swf_line(job.to_line())
        assert again.submit_time == 0.5
        assert again.run_time == 10.25


class TestToJobSpecs:
    def test_conversion_basics(self):
        specs = swf_to_jobspecs(loads_swf(SAMPLE))
        # job 3 failed with zero runtime -> dropped
        assert [s.job_id for s in specs] == [1, 2, 4]
        s1 = specs[0]
        assert s1.cores == 512
        assert s1.runtime == 120
        assert s1.walltime == 86400
        assert s1.user == 3

    def test_requested_procs_fallback(self):
        specs = swf_to_jobspecs(loads_swf(SAMPLE))
        assert specs[-1].cores == 128  # allocated was -1

    def test_walltime_floored_at_runtime(self):
        trace = loads_swf("1 0 0 120 4 -1 -1 4 60 -1 1 1 1 -1 1 -1 -1 -1\n")
        (spec,) = swf_to_jobspecs(trace)
        assert spec.walltime == 120

    def test_no_requested_time_falls_back_to_runtime(self):
        trace = loads_swf("1 0 0 120 4\n")
        (spec,) = swf_to_jobspecs(trace)
        assert spec.walltime == 120

    def test_include_failed(self):
        trace = loads_swf("1 0 0 50 4 -1 -1 4 60 -1 0 1 1 -1 1 -1 -1 -1\n")
        assert swf_to_jobspecs(trace) == []
        assert len(swf_to_jobspecs(trace, include_failed=True)) == 1

    def test_sorted_by_submit(self):
        trace = loads_swf("2 50 0 10 4\n1 10 0 10 4\n")
        specs = swf_to_jobspecs(trace)
        assert [s.job_id for s in specs] == [1, 2]

    def test_negative_submit_clamped(self):
        trace = loads_swf("1 -5 0 10 4\n")
        (spec,) = swf_to_jobspecs(trace)
        assert spec.submit_time == 0.0
