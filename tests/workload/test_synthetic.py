"""Calibration and determinism tests for the synthetic Curie workload."""

import numpy as np
import pytest

from repro.cluster.curie import curie_machine
from repro.workload.intervals import PAPER_INTERVALS, generate_interval
from repro.workload.spec import validate_workload, workload_stats
from repro.workload.synthetic import (
    BIGJOB_CLASSES,
    CURIE_JOB_CLASSES,
    SMALLJOB_CLASSES,
    CurieWorkloadModel,
    JobClass,
)
from repro.workload.walltime import WalltimeEstimateModel


@pytest.fixture(scope="module")
def machine():
    return curie_machine(scale=0.125)  # 630 nodes, keeps runtimes sane


@pytest.fixture(scope="module")
def medianjob(machine):
    return generate_interval(machine, "medianjob")


class TestJobClass:
    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            JobClass("x", 1.0, 0, 10, 1.0, 10.0)
        with pytest.raises(ValueError):
            JobClass("x", 1.0, 10, 5, 1.0, 10.0)
        with pytest.raises(ValueError):
            JobClass("x", 1.0, 1, 10, 10.0, 1.0)
        with pytest.raises(ValueError):
            JobClass("x", -0.1, 1, 10, 1.0, 10.0)

    def test_sample_cores_within_range_and_node_aligned(self):
        rng = np.random.default_rng(7)
        cls = JobClass("m", 1.0, 512, 4096, 60, 120)
        for _ in range(200):
            c = cls.sample_cores(rng, 1.0)
            assert 496 <= c <= 4112  # rounding to 16 may nudge past bounds
            assert c % 16 == 0

    def test_sample_cores_small_jobs_keep_odd_sizes(self):
        rng = np.random.default_rng(7)
        cls = JobClass("t", 1.0, 1, 8, 1, 10)
        sizes = {cls.sample_cores(rng, 1.0) for _ in range(200)}
        assert sizes <= set(range(1, 9))
        assert len(sizes) > 3

    def test_sample_runtime_within_range(self):
        rng = np.random.default_rng(7)
        cls = JobClass("t", 1.0, 1, 8, 5.0, 50.0)
        for _ in range(200):
            assert 5.0 <= cls.sample_runtime(rng) <= 50.0


class TestModelValidation:
    def test_rejects_bad_parameters(self, machine):
        with pytest.raises(ValueError):
            CurieWorkloadModel(machine, overload=0)
        with pytest.raises(ValueError):
            CurieWorkloadModel(machine, backlog_cluster_fraction=-1)
        with pytest.raises(ValueError):
            CurieWorkloadModel(machine, huge_per_hour=-0.1)
        with pytest.raises(ValueError):
            CurieWorkloadModel(machine, n_users=0)
        with pytest.raises(ValueError):
            CurieWorkloadModel(machine, classes=[])

    def test_rejects_zero_weight_mix(self, machine):
        zero = [JobClass("z", 0.0, 1, 2, 1.0, 2.0)]
        with pytest.raises(ValueError):
            CurieWorkloadModel(machine, classes=zero)

    def test_rejects_nonpositive_duration(self, machine):
        model = CurieWorkloadModel(machine)
        with pytest.raises(ValueError):
            model.generate(0)


class TestCalibration:
    """The workload must reproduce the statistics of Section VII-B."""

    def test_small_fraction_near_69_percent(self, machine, medianjob):
        s = workload_stats(medianjob, cluster_cores=machine.total_cores)
        assert 0.60 <= s.small_fraction <= 0.78

    def test_walltime_overestimation_is_huge(self, machine, medianjob):
        s = workload_stats(medianjob, cluster_cores=machine.total_cores)
        # The paper quotes ~12000x median; anything in the thousands
        # reproduces the "backfilling is broken" regime.
        assert s.median_walltime_ratio > 1000
        assert s.mean_walltime_ratio > 1000

    def test_overload_met(self, machine, medianjob):
        s = workload_stats(medianjob, cluster_cores=machine.total_cores)
        capacity = machine.total_cores * PAPER_INTERVALS["medianjob"].duration
        assert s.total_core_seconds >= 1.5 * capacity

    def test_backlog_fills_a_second_cluster(self, machine, medianjob):
        backlog = [j for j in medianjob if j.submit_time == 0.0]
        assert sum(j.cores for j in backlog) >= machine.total_cores

    def test_huge_jobs_exceed_cluster_hour(self, machine):
        model = CurieWorkloadModel(machine, seed=3, huge_per_hour=2.0)
        jobs = model.generate(5 * 3600.0)
        threshold = machine.total_cores * 3600.0
        huge = [j for j in jobs if j.core_seconds > threshold]
        assert huge, "expected at least one huge job at rate 2/h over 5h"

    def test_ids_unique_and_sorted(self, medianjob):
        validate_workload(medianjob)
        submits = [j.submit_time for j in medianjob]
        assert submits == sorted(submits)

    def test_cores_never_exceed_machine(self, machine, medianjob):
        assert max(j.cores for j in medianjob) <= machine.total_cores

    def test_users_spread(self, medianjob):
        users = {j.user for j in medianjob}
        assert len(users) > 20


class TestDeterminism:
    def test_same_seed_same_workload(self, machine):
        a = CurieWorkloadModel(machine, seed=9).generate(3600)
        b = CurieWorkloadModel(machine, seed=9).generate(3600)
        assert a == b

    def test_different_seed_different_workload(self, machine):
        a = CurieWorkloadModel(machine, seed=9).generate(3600)
        b = CurieWorkloadModel(machine, seed=10).generate(3600)
        assert a != b


class TestIntervalFlavours:
    def test_smalljob_has_more_small_than_bigjob(self, machine):
        small = generate_interval(machine, "smalljob")
        big = generate_interval(machine, "bigjob")
        s_small = workload_stats(small, cluster_cores=machine.total_cores)
        s_big = workload_stats(big, cluster_cores=machine.total_cores)
        assert s_small.small_fraction > s_big.small_fraction

    def test_bigjob_heavier_median_width(self, machine):
        median = generate_interval(machine, "medianjob")
        big = generate_interval(machine, "bigjob")
        widths_median = np.mean([j.cores for j in median])
        widths_big = np.mean([j.cores for j in big])
        assert widths_big > widths_median

    def test_24h_duration(self, machine):
        jobs = generate_interval(machine, "24h")
        assert max(j.submit_time for j in jobs) > 20 * 3600

    def test_unknown_interval_raises(self, machine):
        with pytest.raises(KeyError):
            generate_interval(machine, "weekend")

    def test_class_mix_weights(self):
        assert sum(c.weight for c in CURIE_JOB_CLASSES) == pytest.approx(1.0)
        assert sum(c.weight for c in SMALLJOB_CLASSES) == pytest.approx(1.0)
        assert sum(c.weight for c in BIGJOB_CLASSES) == pytest.approx(1.0)


class TestWalltimeModel:
    def test_sample_at_least_runtime(self):
        rng = np.random.default_rng(0)
        m = WalltimeEstimateModel()
        for runtime in (1.0, 59.0, 7000.0, 2 * 86400.0):
            for _ in range(50):
                assert m.sample(runtime, rng) >= runtime

    def test_sample_many_matches_semantics(self):
        m = WalltimeEstimateModel()
        runtimes = np.array([1.0, 10.0, 1000.0, 100000.0])
        out = m.sample_many(runtimes, np.random.default_rng(1))
        assert (out >= runtimes).all()

    def test_default_walltime_is_the_median_choice(self):
        rng = np.random.default_rng(0)
        m = WalltimeEstimateModel()
        samples = [m.sample(7.0, rng) for _ in range(1000)]
        frac_default = np.mean([s == m.default_walltime for s in samples])
        assert 0.45 < frac_default < 0.70

    def test_menu_limits_appear(self):
        rng = np.random.default_rng(0)
        m = WalltimeEstimateModel()
        samples = {m.sample(7.0, rng) for _ in range(2000)}
        menu_limits = {lim for lim, _ in m.menu}
        assert menu_limits <= samples | {m.default_walltime}

    def test_menu_respects_runtime(self):
        rng = np.random.default_rng(0)
        m = WalltimeEstimateModel(p_default=0.0, p_round=0.0)
        # Runtime longer than every menu entry: falls back to default.
        for _ in range(50):
            assert m.sample(50000.0, rng) >= 50000.0

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            WalltimeEstimateModel(p_default=0.9, p_round=0.2)
        with pytest.raises(ValueError):
            WalltimeEstimateModel(p_default=-0.1)
        with pytest.raises(ValueError):
            WalltimeEstimateModel(menu=())
        with pytest.raises(ValueError):
            WalltimeEstimateModel(menu=((0.0, 1.0),))
        with pytest.raises(ValueError):
            WalltimeEstimateModel(default_walltime=0)

    def test_rejects_nonpositive_runtime(self):
        m = WalltimeEstimateModel()
        with pytest.raises(ValueError):
            m.sample(0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            m.sample_many(np.array([1.0, -1.0]), np.random.default_rng(0))
