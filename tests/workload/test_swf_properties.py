"""Property-based round-trip tests for the SWF reader/writer."""

import io

from hypothesis import given, strategies as st

from repro.workload.swf import (
    SWFJob,
    SWFTrace,
    loads_swf,
    parse_swf_line,
    swf_to_jobspecs,
    write_swf,
)

swf_jobs = st.builds(
    SWFJob,
    job_number=st.integers(min_value=1, max_value=10**6),
    submit_time=st.integers(min_value=0, max_value=10**8).map(float),
    wait_time=st.integers(min_value=-1, max_value=10**6).map(float),
    run_time=st.integers(min_value=-1, max_value=10**6).map(float),
    allocated_procs=st.integers(min_value=-1, max_value=80640),
    average_cpu_time=st.integers(min_value=-1, max_value=10**6).map(float),
    used_memory=st.integers(min_value=-1, max_value=10**6).map(float),
    requested_procs=st.integers(min_value=-1, max_value=80640),
    requested_time=st.integers(min_value=-1, max_value=10**6).map(float),
    requested_memory=st.integers(min_value=-1, max_value=10**6).map(float),
    status=st.sampled_from((-1, 0, 1, 5)),
    user_id=st.integers(min_value=-1, max_value=1000),
    group_id=st.integers(min_value=-1, max_value=100),
    executable_id=st.integers(min_value=-1, max_value=1000),
    queue_id=st.integers(min_value=-1, max_value=10),
    partition_id=st.integers(min_value=-1, max_value=10),
    preceding_job=st.integers(min_value=-1, max_value=10**6),
    think_time=st.integers(min_value=-1, max_value=10**4).map(float),
)


@given(job=swf_jobs)
def test_line_roundtrip(job):
    assert parse_swf_line(job.to_line()) == job


@given(jobs=st.lists(swf_jobs, max_size=20))
def test_trace_roundtrip(jobs):
    trace = SWFTrace(jobs=jobs, header={"MaxProcs": "80640"})
    buf = io.StringIO()
    write_swf(trace, buf)
    again = loads_swf(buf.getvalue())
    assert again.jobs == jobs
    assert again.header == trace.header


@given(jobs=st.lists(swf_jobs, max_size=30))
def test_jobspec_conversion_invariants(jobs):
    """Converted specs always satisfy JobSpec's own invariants and are
    sorted by submission."""
    specs = swf_to_jobspecs(SWFTrace(jobs=jobs))
    submits = [s.submit_time for s in specs]
    assert submits == sorted(submits)
    for s in specs:
        assert s.cores > 0
        assert s.runtime > 0
        assert s.walltime >= s.runtime
        assert s.submit_time >= 0
        assert s.user >= 0
