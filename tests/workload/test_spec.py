"""Unit tests for JobSpec and workload statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.workload.spec import JobSpec, validate_workload, workload_stats


def mkjob(job_id=1, submit=0.0, cores=16, runtime=60.0, walltime=86400.0, user=0):
    return JobSpec(job_id, submit, cores, runtime, walltime, user)


class TestJobSpec:
    def test_valid_job(self):
        j = mkjob()
        assert j.core_seconds == 16 * 60
        assert j.walltime_ratio == pytest.approx(86400 / 60)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cores": 0},
            {"cores": -4},
            {"runtime": 0.0},
            {"walltime": 30.0},  # below runtime
            {"submit": -1.0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            mkjob(**kwargs)

    def test_shifted_translates_and_clamps(self):
        j = mkjob(submit=100.0)
        assert j.shifted(-40).submit_time == 60.0
        assert j.shifted(-200).submit_time == 0.0
        assert j.shifted(50).submit_time == 150.0
        # original untouched (frozen dataclass)
        assert j.submit_time == 100.0

    @given(
        cores=st.integers(min_value=1, max_value=100000),
        runtime=st.floats(min_value=0.1, max_value=1e6),
        factor=st.floats(min_value=1.0, max_value=1e5),
    )
    def test_walltime_ratio_property(self, cores, runtime, factor):
        j = JobSpec(1, 0.0, cores, runtime, runtime * factor)
        assert j.walltime_ratio == pytest.approx(factor)


class TestWorkloadStats:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            workload_stats([])

    def test_small_fraction(self):
        jobs = [
            mkjob(1, cores=16, runtime=30),     # small
            mkjob(2, cores=511, runtime=119),   # small
            mkjob(3, cores=512, runtime=30),    # wide
            mkjob(4, cores=16, runtime=600, walltime=86400),  # long
        ]
        s = workload_stats(jobs)
        assert s.small_fraction == pytest.approx(0.5)
        assert s.n_jobs == 4

    def test_huge_fraction_uses_cluster_hour(self):
        huge = mkjob(1, cores=80640, runtime=3700, walltime=86400)
        tiny = mkjob(2, cores=1, runtime=10)
        s = workload_stats([huge, tiny], cluster_cores=80640)
        assert s.huge_fraction == pytest.approx(0.5)

    def test_total_core_seconds(self):
        jobs = [mkjob(1, cores=2, runtime=100), mkjob(2, cores=3, runtime=10)]
        assert workload_stats(jobs).total_core_seconds == 230

    def test_medians(self):
        jobs = [
            mkjob(1, cores=1, runtime=10),
            mkjob(2, cores=100, runtime=100),
            mkjob(3, cores=7, runtime=50),
        ]
        s = workload_stats(jobs)
        assert s.median_cores == 7
        assert s.median_runtime == 50


class TestValidateWorkload:
    def test_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_workload([mkjob(1), mkjob(1)])

    def test_clean_passes(self):
        validate_workload([mkjob(1), mkjob(2)])
