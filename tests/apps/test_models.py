"""Unit tests for the application DVFS models (Figures 3/5)."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.models import (
    AppModel,
    CURIE_APP_MODELS,
    gromacs_model,
    imb_model,
    linpack_model,
    stream_model,
)


class TestValidation:
    def test_rejects_bad_degmin(self):
        with pytest.raises(ValueError):
            AppModel("x", degmin=0.9, power_scale=1.0)

    def test_rejects_bad_power_scale(self):
        with pytest.raises(ValueError):
            AppModel("x", degmin=1.5, power_scale=0.0)
        with pytest.raises(ValueError):
            AppModel("x", degmin=1.5, power_scale=1.1)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            AppModel("x", degmin=1.5, power_scale=1.0, time_exponent=0.5)


class TestCurieModels:
    def test_all_four_present(self):
        assert set(CURIE_APP_MODELS()) == {"linpack", "STREAM", "IMB", "GROMACS"}

    @pytest.mark.parametrize(
        "factory,degmin",
        [
            (linpack_model, 2.14),
            (imb_model, 2.13),
            (stream_model, 1.26),
            (gromacs_model, 1.16),
        ],
    )
    def test_degmin_endpoints(self, factory, degmin):
        m = factory()
        assert m.normalized_time(1.2) == pytest.approx(degmin)
        assert m.normalized_time(2.7) == 1.0

    def test_time_outside_range_rejected(self):
        with pytest.raises(ValueError):
            linpack_model().normalized_time(0.8)

    def test_linpack_is_envelope(self):
        lp = linpack_model()
        assert lp.power_watts(2.7) == 358.0
        assert lp.power_watts(1.2) == 193.0

    def test_power_never_below_idle(self):
        for m in CURIE_APP_MODELS().values():
            for ghz in m.freq_table.frequencies:
                assert m.power_watts(ghz) >= m.freq_table.idle_watts

    def test_tradeoff_curve_shape(self):
        curve = gromacs_model().tradeoff_curve()
        assert len(curve) == 8
        ghz, times, powers = zip(*curve)
        assert list(ghz) == sorted(ghz)
        assert times[0] == pytest.approx(1.16)
        assert times[-1] == 1.0

    def test_compute_bound_energy_optimum_in_high_range(self):
        # Section VI-B: optima between 2.0 and 2.7 GHz for the
        # strongly degrading codes.
        for m in (linpack_model(), imb_model()):
            assert 2.0 <= m.best_energy_frequency() <= 2.7

    def test_memory_bound_prefers_low_frequency(self):
        # STREAM/GROMACS barely slow down: low frequencies win energy.
        assert stream_model().best_energy_frequency() <= 2.0
        assert gromacs_model().best_energy_frequency() <= 2.0

    def test_linear_exponent_matches_scheduler_convention(self):
        m = AppModel("x", degmin=1.63, power_scale=1.0, time_exponent=1.0)
        # Linear: 2.0 GHz sits at (2.7-2.0)/1.5 of the span.
        assert m.normalized_time(2.0) == pytest.approx(1.0 + 0.63 * 0.7 / 1.5)

    @given(
        ghz=st.sampled_from((1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.7)),
        degmin=st.floats(min_value=1.0, max_value=3.0),
        exponent=st.floats(min_value=1.0, max_value=3.0),
    )
    def test_time_bounds_property(self, ghz, degmin, exponent):
        m = AppModel("x", degmin=degmin, power_scale=1.0, time_exponent=exponent)
        t = m.normalized_time(ghz)
        assert 1.0 - 1e-12 <= t <= degmin + 1e-12

    def test_energy_per_unit_work_definition(self):
        m = linpack_model()
        assert m.energy_per_unit_work(2.7) == pytest.approx(358.0)
        assert m.energy_per_unit_work(1.2) == pytest.approx(193.0 * 2.14)
