"""Ablations of the design choices DESIGN.md calls out.

* grouped vs scattered switch-off selection (the offline phase's
  raison d'etre);
* soft vs strict planned-cap gating;
* per-job (Algorithm 2) vs cluster-wide frequency rule (Section IV-B);
* kill-on-violation vs drain (the "extreme actions" knob);
* backfill depth;
* reservation drain horizon (SLURM strict vs IGNORE_JOBS semantics).
"""

import math

import numpy as np

from repro.analysis.report import middle_cap_window, run_cell
from repro.core.offline import OfflinePlanner
from repro.core.policies import make_policy
from repro.rjms.config import SchedulerConfig
from repro.rjms.reservations import PowercapReservation
from repro.sim.replay import powercap_reservation, run_replay

from conftest import HOUR, write_artifact

DURATION = 5 * HOUR


def test_ablation_grouped_vs_scattered(benchmark, machine, artifact_dir):
    """Grouping switch-offs by enclosure keeps more nodes alive for
    the same cap: the bonus buys ~1.45 nodes per chassis and ~9.9 per
    rack (Figure 2's 'at least 1 extra node / at least 9 extra
    nodes')."""
    planner = OfflinePlanner(machine, make_policy("SHUT", machine.freq_table))

    def both(fraction):
        cap = PowercapReservation(HOUR, 2 * HOUR, watts=fraction * machine.max_power())
        plan = planner.plan(cap)
        deficit = planner._worst_case_alive(np.array([], int)) - cap.watts
        scattered = math.ceil(max(deficit, 0.0) / (358.0 - 14.0))
        return plan.n_off_selected, scattered, plan.bonus_watts

    grouped, scattered, bonus = benchmark(both, 0.5)
    assert grouped <= scattered, "grouping must not cost alive nodes"
    assert bonus > 0
    # Figure 2's per-enclosure yield.
    assert 500 / 344 > 1.0  # >= 1 extra node per chassis
    assert 3400 / 344 > 9.0  # >= 9 extra nodes per rack
    lines = []
    for fraction in (0.8, 0.6, 0.5, 0.4, 0.3):
        g, s, b = both(fraction)
        lines.append(
            f"cap {fraction:.0%}: grouped={g} nodes, scattered={s} nodes, "
            f"alive gain={s - g}, bonus={b:.0f} W"
        )
        assert g <= s
    write_artifact("ablation_grouped_vs_scattered.txt", "\n".join(lines))


def test_ablation_strict_future_gating(benchmark, machine, workloads, artifact_dir):
    """Strict gating on planned windows starves the pre-window period;
    the soft default (frequency preparation only) keeps the machine
    busy — the behaviour Figures 6/7 show."""
    jobs = workloads["medianjob"]

    def run(strict):
        return run_cell(
            machine,
            jobs,
            "medianjob",
            "DVFS",
            0.4,
            config=SchedulerConfig(strict_future_caps=strict),
        )

    soft = benchmark.pedantic(run, args=(False,), rounds=1, iterations=1)
    strict = run(True)
    assert soft.work_norm > strict.work_norm
    write_artifact(
        "ablation_strict_future.txt",
        f"soft:   work={soft.work_norm:.3f} energy={soft.energy_norm:.3f}\n"
        f"strict: work={strict.work_norm:.3f} energy={strict.energy_norm:.3f}",
    )


def test_ablation_cluster_frequency_rule(benchmark, machine, workloads, artifact_dir):
    """The Section IV-B 'all idle nodes could run at f' rule is more
    conservative than the per-job Algorithm 2 walk: mean assigned
    frequency does not increase."""
    jobs = workloads["smalljob"]

    def mean_freq(cluster_rule):
        start, end = middle_cap_window(DURATION)
        caps = [powercap_reservation(machine, 0.6, start, end)]
        r = run_replay(
            machine,
            jobs,
            "DVFS",
            duration=DURATION,
            powercaps=caps,
            config=SchedulerConfig(cluster_frequency_rule=cluster_rule),
        )
        freqs = [
            rec.freq_ghz for rec in r.recorder.jobs.values() if rec.freq_ghz is not None
        ]
        return float(np.mean(freqs))

    per_job = benchmark.pedantic(mean_freq, args=(False,), rounds=1, iterations=1)
    cluster = mean_freq(True)
    assert cluster <= per_job + 1e-6
    write_artifact(
        "ablation_cluster_rule.txt",
        f"per-job rule mean GHz: {per_job:.3f}\ncluster rule mean GHz: {cluster:.3f}",
    )


def test_ablation_kill_on_violation(benchmark, machine, workloads, artifact_dir):
    """'Extreme actions': killing restores the cap instantly at the
    window start; the default drains."""
    jobs = workloads["medianjob"]
    start, end = middle_cap_window(DURATION)
    caps = [powercap_reservation(machine, 0.4, start, end)]

    def run(kill):
        r = run_replay(
            machine,
            jobs,
            "IDLE",
            duration=DURATION,
            powercaps=caps,
            config=SchedulerConfig(kill_on_violation=kill),
        )
        grid = r.recorder.to_grid(start, start + 600.0, 60.0)
        killed = sum(1 for rec in r.recorder.jobs.values() if rec.state == "killed")
        return float(grid["power"].max()), killed

    peak_kill, n_killed = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    peak_drain, n_killed_drain = run(False)
    assert n_killed > 0 and n_killed_drain == 0
    assert peak_kill <= caps[0].watts * 1.001
    assert peak_drain > caps[0].watts  # tolerated violation while draining
    write_artifact(
        "ablation_kill_on_violation.txt",
        f"kill:  peak={peak_kill:.0f} W, killed={n_killed}\n"
        f"drain: peak={peak_drain:.0f} W, killed={n_killed_drain}\n"
        f"cap:   {caps[0].watts:.0f} W",
    )


def test_ablation_backfill_depth(benchmark, machine, workloads, artifact_dir):
    """Deeper backfill scans launch at least as many jobs."""
    jobs = workloads["smalljob"]

    def launched(depth):
        r = run_replay(
            machine,
            jobs,
            "NONE",
            duration=DURATION,
            config=SchedulerConfig(backfill_depth=depth),
        )
        return r.launched_jobs()

    deep = benchmark.pedantic(launched, args=(100,), rounds=1, iterations=1)
    shallow = launched(5)
    assert deep >= shallow
    write_artifact(
        "ablation_backfill_depth.txt", f"depth=100: {deep}\ndepth=5:   {shallow}"
    )


def test_ablation_drain_horizon(benchmark, machine, workloads, artifact_dir):
    """SLURM's strict reservation semantics (inf horizon) drain the
    reserved nodes before the window, making the switch-off effective
    from the window start; IGNORE_JOBS semantics (0) leave them busy
    and the shutdown barely materialises."""
    jobs = workloads["medianjob"]
    start, end = middle_cap_window(DURATION)
    caps = [powercap_reservation(machine, 0.4, start, end)]

    def off_area(horizon):
        r = run_replay(
            machine,
            jobs,
            "SHUT",
            duration=DURATION,
            powercaps=caps,
            config=SchedulerConfig(reservation_drain_horizon=horizon),
        )
        grid = r.recorder.to_grid(start, end, 300.0)
        return float(grid["off_cores"].mean()), r.work_normalized()

    off_inf, work_inf = benchmark.pedantic(
        off_area, args=(math.inf,), rounds=1, iterations=1
    )
    off_zero, work_zero = off_area(0.0)
    assert off_inf > off_zero
    write_artifact(
        "ablation_drain_horizon.txt",
        f"horizon=inf: mean off cores in window={off_inf:.0f}, work={work_inf:.3f}\n"
        f"horizon=0:   mean off cores in window={off_zero:.0f}, work={work_zero:.3f}",
    )
