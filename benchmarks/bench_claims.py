"""Scalar claims of Section VII-C not tied to a single figure.

* 24 h runs at a 40 % cap: SHUT keeps the most work (the paper: ~94 %
  vs ~85 % for DVFS and MIX) and MIX has the lowest energy;
* with both mechanisms deactivated (IDLE), work collapses while the
  energy stays comparable;
* DVFS degrades fastest below the 60 % cap;
* frequency scaling is the better policy at the large 80 % cap.
"""

import pytest

from repro.analysis.report import middle_cap_window, run_cell
from repro.rjms.config import SchedulerConfig
from repro.sim.replay import powercap_reservation, run_replay

from conftest import HOUR, write_artifact

_cells_24h: dict[str, object] = {}


@pytest.mark.parametrize("policy", ["SHUT", "DVFS", "MIX"])
def test_claim_24h_40pct(benchmark, machine, workload_24h, policy):
    cell = benchmark.pedantic(
        run_cell,
        args=(machine, workload_24h, "24h", policy, 0.4),
        kwargs={"duration": 24 * HOUR},
        rounds=1,
        iterations=1,
    )
    _cells_24h[policy] = cell
    assert 0.5 <= cell.work_norm <= 1.0


def test_claim_24h_shut_most_work_mix_least_energy(benchmark, artifact_dir):
    """"a work around 85% of the total possible work, while SHUT has a
    work of 94% ... the energy consumption is at the lowest in the MIX
    mode" (24 h runs, 40 % cap).

    Reproduced: every policy keeps work in the paper's 85-94 % band
    (a one-hour cap barely dents a whole day), MIX consumes less
    energy than SHUT, and in *effective* (slowdown-corrected) work the
    switch-off policies match or beat DVFS.  Not reproduced: the
    paper's raw-work ordering SHUT > DVFS — our DVFS raw work is
    inflated by the runtime stretch, exactly as the paper's own
    Figure 8 reading ("DVFS mode's work is always larger than SHUT
    mode's") predicts.  See EXPERIMENTS.md.
    """
    assert set(_cells_24h) == {"SHUT", "DVFS", "MIX"}, "run the 24h cells first"
    shut, dvfs, mix = (_cells_24h[p] for p in ("SHUT", "DVFS", "MIX"))
    benchmark(lambda: None)
    for c in (shut, dvfs, mix):
        assert 0.75 <= c.work_norm <= 1.0, c
    # MIX lowest energy among the switch-off-capable policies.
    assert mix.energy_norm <= shut.energy_norm + 1e-6
    # Effective throughput: switch-off >= DVFS.
    assert shut.effective_work_norm >= dvfs.effective_work_norm - 0.02
    assert mix.effective_work_norm >= dvfs.effective_work_norm - 0.02
    lines = ["24h @ 40% cap (paper: SHUT ~0.94, DVFS/MIX ~0.85, MIX lowest energy):"]
    for p, c in _cells_24h.items():
        lines.append(
            f"  {p:4s}: work={c.work_norm:.3f} eff_work={c.effective_work_norm:.3f} "
            f"energy={c.energy_norm:.3f} job_energy={c.job_energy_norm:.3f} "
            f"launched={c.launched_jobs}"
        )
    write_artifact("claims_24h_40pct.txt", "\n".join(lines))


def test_claim_idle_only_worst_work(benchmark, machine, workloads, artifact_dir):
    """"this solution has the worst work (about 40% lower than other
    modes), while keeping about the same energy consumption".

    IDLE cannot prepare for the window (no DVFS, no switch-off); under
    strict planned-cap gating it starves jobs whose walltime crosses
    the window — the paper's deactivated-mechanisms regime."""
    jobs = workloads["medianjob"]

    def run_idle():
        return run_cell(
            machine,
            jobs,
            "medianjob",
            "IDLE",
            0.4,
            config=SchedulerConfig(strict_future_caps=True),
        )

    idle = benchmark.pedantic(run_idle, rounds=1, iterations=1)
    others = [
        run_cell(machine, jobs, "medianjob", p, 0.4) for p in ("SHUT", "MIX")
    ]
    assert all(idle.work_norm < o.work_norm for o in others)
    best = max(o.work_norm for o in others)
    assert idle.work_norm < 0.8 * best, (idle.work_norm, best)
    lines = [
        f"IDLE(strict): work={idle.work_norm:.3f} energy={idle.energy_norm:.3f}"
    ] + [
        f"{o.policy}: work={o.work_norm:.3f} energy={o.energy_norm:.3f}"
        for o in others
    ]
    write_artifact("claims_idle_worst.txt", "\n".join(lines))


def test_claim_dvfs_drops_fastest_below_60(benchmark, machine, workloads, artifact_dir):
    """"DVFS mode seems to be decreasing more rapidly below 60%
    whereas SHUT and MIX modes appear to be more consistent."

    The mechanism: at a 60 % cap, every node can still compute at
    1.2 GHz (60 % > Pmin/Pmax = 0.54), so DVFS keeps the whole
    machine busy; at 40 % the cap is below the all-nodes-at-minimum
    floor and DVFS utilisation collapses to the idle-power headroom,
    while SHUT sheds nodes and keeps the survivors at full speed.
    Measured under a standing cap (active for the whole replay) so
    the steady state, not the drain transient, is compared."""
    jobs = workloads["smalljob"]

    def steady_util(policy, fraction):
        caps = [powercap_reservation(machine, fraction, 0.0, 5 * HOUR)]
        r = run_replay(machine, jobs, policy, duration=5 * HOUR, powercaps=caps)
        grid = r.recorder.to_grid(1 * HOUR, 5 * HOUR, 300.0)
        busy = sum(grid[f"cores@{g:g}"] for g in machine.freq_table.frequencies)
        return float(busy.mean()) / machine.total_cores

    dvfs60 = benchmark.pedantic(
        steady_util, args=("DVFS", 0.6), rounds=1, iterations=1
    )
    dvfs40 = steady_util("DVFS", 0.4)
    shut60 = steady_util("SHUT", 0.6)
    shut40 = steady_util("SHUT", 0.4)
    # Below the floor, DVFS keeps the least of the machine computing
    # and shows the steepest 60 % -> 40 % decline (the crossover).
    # (At 60 % DVFS does not reach its theoretical all-nodes-at-1.2
    # state: wide pending jobs power-starve under EASY backfill, the
    # paper's "backfilling does not seem to work" effect.)
    assert dvfs40 < shut40
    assert (dvfs60 - dvfs40) > (shut60 - shut40)
    write_artifact(
        "claims_dvfs_crossover.txt",
        f"standing cap, steady-state utilisation:\n"
        f"  60%: DVFS={dvfs60:.3f} SHUT={shut60:.3f}\n"
        f"  40%: DVFS={dvfs40:.3f} SHUT={shut40:.3f}\n"
        f"  drop 60->40: DVFS={dvfs60 - dvfs40:.3f} SHUT={shut60 - shut40:.3f}",
    )


def test_claim_dvfs_best_at_80(benchmark, machine, workloads, artifact_dir):
    """"frequency scaling provides better results with large powercaps
    of 80%": DVFS keeps the most work at the mild cap."""
    jobs = workloads["medianjob"]
    dvfs = benchmark.pedantic(
        run_cell,
        args=(machine, jobs, "medianjob", "DVFS", 0.8),
        rounds=1,
        iterations=1,
    )
    shut = run_cell(machine, jobs, "medianjob", "SHUT", 0.8)
    assert dvfs.work_norm >= shut.work_norm - 0.01
    write_artifact(
        "claims_80pct.txt",
        f"DVFS: work={dvfs.work_norm:.3f} energy={dvfs.energy_norm:.3f}\n"
        f"SHUT: work={shut.work_norm:.3f} energy={shut.energy_norm:.3f}",
    )
