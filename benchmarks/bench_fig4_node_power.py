"""Figure 4 — maximum node power per state.

Regenerates the per-state watt table (switch-off, idle, and each DVFS
step) from the machine description and validates every published
value, plus the paper's "one order of magnitude" idle-vs-off remark.
"""

from repro.cluster.curie import (
    CURIE_FREQ_WATTS,
    CURIE_FREQUENCY_TABLE,
    curie_machine,
)

from conftest import write_artifact

PAPER_TABLE = {
    "Switch-off": 14.0,
    "Idle": 117.0,
    "DVFS 1.2 GHz": 193.0,
    "DVFS 1.4 GHz": 213.0,
    "DVFS 1.6 GHz": 234.0,
    "DVFS 1.8 GHz": 248.0,
    "DVFS 2.0 GHz": 269.0,
    "DVFS 2.2 GHz": 289.0,
    "DVFS 2.4 GHz": 317.0,
    "DVFS 2.7 GHz": 358.0,
}


def build_table():
    t = CURIE_FREQUENCY_TABLE
    rows = {"Switch-off": t.down_watts, "Idle": t.idle_watts}
    for step in t:
        rows[f"DVFS {step.ghz} GHz"] = step.watts
    return rows


def test_fig4_node_power_table(benchmark, artifact_dir):
    rows = benchmark(build_table)
    assert rows == PAPER_TABLE
    text = "\n".join(f"{k:<14} {v:>6.0f} W" for k, v in rows.items())
    write_artifact("fig4_node_power.txt", text)


def test_fig4_idle_off_order_of_magnitude(benchmark):
    """"a switched-off node consumes one order of magnitude less
    power" than an idle one."""
    t = benchmark(lambda: CURIE_FREQUENCY_TABLE)
    assert t.idle_watts / t.down_watts > 8.0


def test_fig4_accountant_agrees_with_table(benchmark):
    """The whole-cluster accountant reproduces per-state node power."""
    import numpy as np

    from repro.cluster.states import NodeState

    machine = curie_machine(scale=1 / 56)

    def one_node_sweep():
        acct = machine.new_accountant()
        floor = acct.idle_floor()
        readings = {}
        node = np.array([0])
        for i, step in enumerate(machine.freq_table):
            acct.set_state(node, NodeState.BUSY, freq_index=i)
            readings[step.ghz] = acct.total_power() - floor + machine.freq_table.idle_watts
        return readings

    readings = benchmark(one_node_sweep)
    for ghz, watts in CURIE_FREQ_WATTS.items():
        assert readings[ghz] == watts
