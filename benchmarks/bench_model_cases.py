"""Section III-A model regimes — the four cases and their thresholds.

Not a paper figure, but the analytical backbone DESIGN.md calls out:
validates the case boundaries (lambda floors at Pmin/Pmax = 0.539 for
the full range and 0.751 for the MIX range) and the cost of the rho
convention vs the exact optimum.
"""

import numpy as np

from repro.core.powermodel import ModelCase, plan_nodes, plan_nodes_exact

from conftest import write_artifact

N = 5040
PMAX, PMIN, POFF = 358.0, 193.0, 14.0
PMIN_MIX = 269.0


def sweep(pmin, degmin):
    rows = []
    for lam in np.arange(0.10, 1.01, 0.05):
        plan = plan_nodes(
            N, lam * N * PMAX, pmax=PMAX, pmin=pmin, poff=POFF, degmin=degmin
        )
        rows.append((float(lam), plan))
    return rows


def test_model_case_boundaries(benchmark, artifact_dir):
    rows = benchmark(sweep, PMIN, 1.63)
    floor = PMIN / PMAX  # 0.539
    lines = [f"{'lambda':>7} {'case':>14} {'Noff':>8} {'Ndvfs':>8} {'W':>8}"]
    for lam, plan in rows:
        lines.append(
            f"{lam:>7.2f} {plan.case.value:>14} {plan.n_off:>8.1f} "
            f"{plan.n_dvfs:>8.1f} {plan.capacity:>8.1f}"
        )
        if lam < floor - 1e-6:
            assert plan.case == ModelCase.COMBINED, lam
        elif lam < 1.0 - 1e-9:
            # Curie's rho < 0: switch-off everywhere above the floor.
            assert plan.case == ModelCase.SHUTDOWN_ONLY, lam
    write_artifact("model_cases_full_range.txt", "\n".join(lines))


def test_model_mix_threshold(benchmark):
    """MIX mixes both mechanisms below 75 % of max power (VI-B)."""
    rows = benchmark(sweep, PMIN_MIX, 1.29)
    floor = PMIN_MIX / PMAX  # 0.751
    for lam, plan in rows:
        if lam < floor - 1e-6:
            assert plan.case == ModelCase.COMBINED, lam
        elif lam < 1.0 - 1e-9:
            assert plan.case != ModelCase.COMBINED, lam


def test_model_capacity_monotone_under_exact_criterion(benchmark):
    """The exact-optimum planner's capacity is monotone in the cap.

    Interestingly, Algorithm 1 with the paper's rho convention is
    *not*: just above the lambda = Pmin/Pmax floor it forces
    shutdown-only (rho < 0 on Curie) whose capacity is below the
    combined case-4 solution just under the floor — a kink the exact
    criterion does not have.  Both behaviours are asserted.
    """

    def sweep_exact():
        rows = []
        for lam in np.arange(0.10, 1.01, 0.02):
            plan = plan_nodes_exact(
                N, lam * N * PMAX, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63
            )
            rows.append((float(lam), plan))
        return rows

    exact_rows = benchmark(sweep_exact)
    caps = [plan.capacity for _, plan in exact_rows]
    assert all(a <= b + 1e-9 for a, b in zip(caps, caps[1:]))

    # The rho-convention kink at the floor (DESIGN.md, model nuances).
    floor = PMIN / PMAX
    below = plan_nodes(
        N, (floor - 0.01) * N * PMAX, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63
    )
    above = plan_nodes(
        N, (floor + 0.01) * N * PMAX, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63
    )
    assert below.capacity > above.capacity


def test_model_rho_convention_cost(benchmark, artifact_dir):
    """Quantify the capacity the Figure 5 rho convention gives up
    against the exact optimum (DESIGN.md, model nuances)."""

    def cost():
        worst = 0.0
        for lam in np.arange(0.55, 1.0, 0.05):
            p = lam * N * PMAX
            a = plan_nodes(N, p, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63)
            b = plan_nodes_exact(N, p, pmax=PMAX, pmin=PMIN, poff=POFF, degmin=1.63)
            worst = max(worst, (b.capacity - a.capacity) / N)
        return worst

    worst = benchmark(cost)
    assert 0.0 <= worst < 0.25
    write_artifact(
        "model_rho_convention_cost.txt",
        f"max capacity loss of rho convention vs exact optimum: {worst:.3f} of N",
    )
