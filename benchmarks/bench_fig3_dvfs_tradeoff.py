"""Figure 3 — max power vs normalised execution time per application.

Regenerates the Linpack / STREAM / IMB / GROMACS trade-off curves
across 1.2-2.7 GHz and validates their shape: power monotone in
frequency, Linpack defining the envelope, GROMACS/STREAM barely
slowing down, and the Section VI-B observation that the
energy/performance trade-off is non-monotonic with optima in the
2.0-2.7 GHz range.
"""

from repro.apps.models import CURIE_APP_MODELS

from conftest import write_artifact


def build_curves():
    return {name: m.tradeoff_curve() for name, m in CURIE_APP_MODELS().items()}


def render(curves) -> str:
    lines = []
    for name, curve in curves.items():
        lines.append(f"== {name} ==")
        lines.append(f"{'GHz':>5} {'norm. time':>11} {'max power (W)':>14}")
        for ghz, t, p in curve:
            lines.append(f"{ghz:>5.1f} {t:>11.3f} {p:>14.1f}")
        lines.append("")
    return "\n".join(lines)


def test_fig3_tradeoff_curves(benchmark, artifact_dir):
    curves = benchmark(build_curves)
    assert set(curves) == {"linpack", "STREAM", "IMB", "GROMACS"}
    for name, curve in curves.items():
        ghz = [c[0] for c in curve]
        times = [c[1] for c in curve]
        powers = [c[2] for c in curve]
        assert ghz == sorted(ghz)
        # Time monotone non-increasing in frequency; power monotone
        # non-decreasing (the paper's "unlike the energy trade-off,
        # the power/performance trade-off is monotonic").
        assert all(a >= b for a, b in zip(times, times[1:]))
        assert all(a <= b for a, b in zip(powers, powers[1:]))
        assert times[-1] == 1.0
    write_artifact("fig3_dvfs_tradeoff.txt", render(curves))


def test_fig3_degmin_endpoints(benchmark):
    models = benchmark(CURIE_APP_MODELS)
    assert models["linpack"].normalized_time(1.2) == 2.14
    assert models["IMB"].normalized_time(1.2) == 2.13
    assert models["STREAM"].normalized_time(1.2) == 1.26
    assert models["GROMACS"].normalized_time(1.2) == 1.16


def test_fig3_linpack_defines_envelope(benchmark):
    models = benchmark(CURIE_APP_MODELS)
    lp = models["linpack"]
    # Figure 4's per-state maxima are the Linpack draw.
    for ghz, watts in ((1.2, 193.0), (2.0, 269.0), (2.7, 358.0)):
        assert lp.power_watts(ghz) == watts
    for name in ("STREAM", "IMB", "GROMACS"):
        for ghz in (1.2, 2.0, 2.7):
            assert models[name].power_watts(ghz) <= lp.power_watts(ghz)


def test_fig3_energy_nonmonotonic_high_optimum(benchmark):
    """Section VI-B: 'the most optimal points are between 2.7 GHz and
    2.0 GHz' for the compute/network-bound codes — the rationale for
    restricting MIX to the high range."""
    models = benchmark(CURIE_APP_MODELS)
    for name in ("linpack", "IMB"):
        best = models[name].best_energy_frequency()
        assert 2.0 <= best <= 2.7, f"{name} optimum at {best}"
        # Non-monotonic: the lowest step is NOT the energy optimum.
        m = models[name]
        assert m.energy_per_unit_work(1.2) > m.energy_per_unit_work(best)
        assert m.energy_per_unit_work(2.7) > m.energy_per_unit_work(best) - 1e-9
