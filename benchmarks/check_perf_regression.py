#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against the committed baseline.

Usage::

    python benchmarks/check_perf_regression.py bench.json [BENCH_pr2.json]

Exits non-zero when any benchmark's mean exceeds ``threshold`` times
the committed mean (default 2.0 — CI machines are noisy, so only a
genuine regression trips it).  Benchmarks whose committed mean sits
below ``--min-seconds`` (default 100 us) are reported but never fail:
at that scale timer jitter and host differences routinely exceed 2x,
so they would only produce false alarms.  Benchmarks present in only
one of the two files are likewise reported but never fail, so adding a
benchmark does not require regenerating the baseline in the same
commit.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_pr2.json"


def load_means(path: Path) -> dict[str, float]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if "benchmarks" not in data:
        raise SystemExit(f"{path}: no 'benchmarks' key")
    entries = data["benchmarks"]
    if isinstance(entries, list):  # raw pytest-benchmark output
        return {b["name"]: float(b["stats"]["mean"]) for b in entries}
    # committed trajectory format
    return {name: float(e["mean_s"]) for name, e in entries.items()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument(
        "baseline", type=Path, nargs="?", default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="fail when current mean > threshold * baseline mean (default 2.0)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=1e-4,
        help="baselines below this never fail (timer noise; default 1e-4)",
    )
    parser.add_argument(
        "--calibrate", metavar="NAME", default=None,
        help=(
            "normalise by this benchmark's current/baseline ratio before "
            "comparing, so a uniformly slower host (e.g. a CI runner vs the "
            "machine that recorded the baseline) does not trip the gate — "
            "only regressions *relative* to the calibration case fail"
        ),
    )
    args = parser.parse_args(argv)

    current = load_means(args.current)
    baseline = load_means(args.baseline)

    host_factor = 1.0
    if args.calibrate is not None:
        cal_cur = current.get(args.calibrate)
        cal_base = baseline.get(args.calibrate)
        if cal_cur and cal_base:
            host_factor = cal_cur / cal_base
            if host_factor > args.threshold:
                # A uniform regression inflates the calibration case
                # too; normalising by it would hide exactly that.  A
                # hardware gap this large is indistinguishable from a
                # regression, so fail loudly either way (regenerate
                # the baseline from a CI artifact if it is hardware).
                print(
                    f"FAIL: calibration benchmark {args.calibrate} is "
                    f"{host_factor:.2f}x its baseline (> threshold "
                    f"{args.threshold:.1f}x) — either the event loop "
                    "regressed or the baseline was recorded on far "
                    "faster hardware; regenerate BENCH_*.json if the "
                    "latter.",
                    file=sys.stderr,
                )
                return 1
            # Floor the factor on fast hosts: if only the calibration
            # case sped up (a targeted event-loop optimisation), a raw
            # sub-1 factor would inflate every other ratio and
            # false-fail them.  The cost is bounded leniency — a host
            # twice as fast masks regressions up to 2x threshold.
            host_factor = max(host_factor, 0.5)
            print(
                f"calibrated on {args.calibrate}: host factor "
                f"{host_factor:.2f}x\n"
            )
        else:
            print(f"warning: calibration benchmark {args.calibrate!r} "
                  "missing; comparing raw means\n")

    failures = []
    width = max((len(n) for n in current), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(current):
        cur = current[name]
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  {'-':>12}  {cur:>12.6f}  (new)")
            continue
        ratio = cur / (base * host_factor) if base > 0 else float("inf")
        regressed = ratio > args.threshold
        if base < args.min_seconds:
            flag = " (below noise floor)" if regressed else ""
            regressed = False
        else:
            flag = " REGRESSION" if regressed else ""
        print(f"{name:<{width}}  {base:>12.6f}  {cur:>12.6f}  {ratio:5.2f}x{flag}")
        if regressed:
            failures.append((name, ratio))
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  {baseline[name]:>12.6f}  {'-':>12}  (missing)")

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed beyond "
            f"{args.threshold:.1f}x: " + ", ".join(n for n, _ in failures),
            file=sys.stderr,
        )
        return 1
    print("\nOK: no regression beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
