"""Figure 7 — (a) bigjob/SHUT/60 % and (b) smalljob/DVFS/40 %.

Runs the library scenarios ``fig7a-bigjob-shut-60`` and
``fig7b-smalljob-dvfs-40`` through the experiment harness and
validates the paper's observations: the SHUT run opens "big space"
(grouped switch-off, power bonus) and rebounds to ~100 % after the
window; the DVFS run shifts launches to ever lower frequencies while
the window approaches, with 2.7 GHz disappearing near/inside it.

Timing note: the benchmarked region is the end-to-end scenario
(machine + workload + replay), not the bare replay as before PR 1.
"""

import numpy as np

from repro.analysis.figures import render_series_ascii
from repro.exp import get_scenario, scenario_series

from conftest import HOUR, repro_scale, write_artifact

DURATION = 5 * HOUR


def run(scenario_name, scale):
    scenario = get_scenario(scenario_name).with_(scale=scale)
    return scenario_series(scenario, grid_dt=300.0)


def test_fig7a_bigjob_shut_60(benchmark, artifact_dir):
    series = benchmark.pedantic(
        run, args=("fig7a-bigjob-shut-60", repro_scale()), rounds=1, iterations=1
    )
    grid = series["grid"]
    window = series["window"]
    t = grid["time"]
    inside = (t >= window[0]) & (t < window[1])
    after = t >= window[1] + 0.25 * HOUR
    total = series["total_cores"]
    busy = sum(grid[f"cores@{g:g}"] for g in series["frequencies"])

    # Shutdown makes "big space" without wasting unused cores: the
    # switched-off area is a large share of the machine.
    assert grid["off_cores"][inside].max() > 0.25 * total
    # Power bonus from grouped switch-off is visible.
    assert grid["bonus"][inside].max() > 0
    # All jobs at max frequency (SHUT never scales).
    freqs = {
        r.freq_ghz
        for r in series["result"].recorder.jobs.values()
        if r.freq_ghz is not None
    }
    assert freqs == {2.7}
    # Rebound to ~100 % after the window.
    assert busy[after].mean() > 0.85 * total
    # Power fits the cap once the reserved nodes are off.
    assert grid["power"][inside].min() <= series["cap_watts"] * 1.02

    write_artifact(
        "fig7a_bigjob_shut60.txt", render_series_ascii(series, width=96, height=12)
    )


def test_fig7b_smalljob_dvfs_40(benchmark, artifact_dir):
    series = benchmark.pedantic(
        run, args=("fig7b-smalljob-dvfs-40", repro_scale()), rounds=1, iterations=1
    )
    grid = series["grid"]
    window = series["window"]
    t = grid["time"]
    total = series["total_cores"]
    early = t < HOUR
    near = (t >= window[0] - HOUR) & (t < window[0])
    inside = (t >= window[0]) & (t < window[1])

    result = series["result"]
    recs = [r for r in result.recorder.jobs.values() if r.start_time is not None]

    # Low frequencies increase while approaching the window: launches
    # in the hour before the window are slower on average than the
    # first hour's.
    def mean_freq(lo, hi):
        sel = [r.freq_ghz for r in recs if lo <= r.start_time < hi]
        return float(np.mean(sel)) if sel else float("nan")

    assert mean_freq(window[0] - HOUR, window[0]) <= mean_freq(0.0, HOUR)

    # 2.7 GHz disappears close to/inside the window: no 2.7 launches.
    launches_27 = [
        r for r in recs if r.freq_ghz == 2.7 and window[0] <= r.start_time < window[1]
    ]
    assert not launches_27

    # Never any switch-off under DVFS.
    assert grid["off_cores"].max() == 0
    assert not result.controller.shutdown_plans[0].any_shutdown

    # The full frequency ladder is exercised somewhere in the run.
    freqs = {r.freq_ghz for r in recs}
    assert 1.2 in freqs and 2.7 in freqs

    write_artifact(
        "fig7b_smalljob_dvfs40.txt", render_series_ascii(series, width=96, height=12)
    )
