#!/usr/bin/env python
"""Gate the zero-copy data plane's two headline ratios.

Usage::

    python benchmarks/check_data_plane.py bench.json [BENCH_pr10.json]

Two checks, both against the PR 10 acceptance bar:

1. **Transfer ratio** (from the live ``bench.json``): the shm transfer
   microbench must move at least ``--min-xfer-ratio`` (default 5) times
   fewer bytes over the driver<->worker pipe than the pickle path for
   the same 12-cell group payload.  The benchmarks record the traffic
   they generated as ``extra_info["pipe_bytes"]``; in practice the shm
   descriptor path is ~3 orders of magnitude smaller.  This is a
   deterministic byte count, so it is gated on the live run.

2. **Batch-pool ratio** (from the committed baseline): the recorded
   single-core batch-pool multigroup mean must sit within
   ``--max-pool-ratio`` (default 1.05) of the in-process batch
   multigroup floor — the compact-envelope dispatch path may not cost
   more than 5% over running the same groups in process.  Wall-clock
   means on a shared CI runner are noisy, so the gate holds the
   *committed* record and the live run's ratio is reported
   informationally.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_pr10.json"

PICKLE_CASE = "test_perf_transfer_pickle_series"
SHM_CASE = "test_perf_transfer_shm_series"
FLOOR_CASE = "test_perf_cap_sweep_batch_multigroup"
POOL_CASE = "test_perf_cap_sweep_batchpool"


def load_entries(path: Path) -> dict[str, dict[str, float]]:
    """Normalise raw pytest-benchmark output and the committed
    trajectory format to ``{name: {"mean_s": .., "pipe_bytes": ..}}``."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if "benchmarks" not in data:
        raise SystemExit(f"{path}: no 'benchmarks' key")
    entries = data["benchmarks"]
    out: dict[str, dict[str, float]] = {}
    if isinstance(entries, list):  # raw pytest-benchmark output
        for b in entries:
            entry = {"mean_s": float(b["stats"]["mean"])}
            extra = b.get("extra_info") or {}
            if "pipe_bytes" in extra:
                entry["pipe_bytes"] = float(extra["pipe_bytes"])
            out[b["name"]] = entry
        return out
    for name, e in entries.items():  # committed trajectory format
        out[name] = {k: float(v) for k, v in e.items()}
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", type=Path, help="pytest-benchmark JSON output")
    parser.add_argument(
        "baseline", type=Path, nargs="?", default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--min-xfer-ratio", type=float, default=5.0,
        help="pickle pipe bytes must exceed shm pipe bytes by this factor",
    )
    parser.add_argument(
        "--max-pool-ratio", type=float, default=1.05,
        help="recorded batch-pool mean over multigroup-floor mean cap",
    )
    args = parser.parse_args(argv)

    current = load_entries(args.current)
    baseline = load_entries(args.baseline)
    failures: list[str] = []

    # 1. driver<->worker traffic, live run.
    pickle_bytes = current.get(PICKLE_CASE, {}).get("pipe_bytes")
    shm_bytes = current.get(SHM_CASE, {}).get("pipe_bytes")
    if pickle_bytes is None or shm_bytes is None or shm_bytes <= 0:
        failures.append(
            "transfer microbenches missing from the live run "
            f"(need pipe_bytes on {PICKLE_CASE} and {SHM_CASE})"
        )
    else:
        ratio = pickle_bytes / shm_bytes
        verdict = "OK" if ratio >= args.min_xfer_ratio else "FAIL"
        print(
            f"transfer: pickle {pickle_bytes:,.0f} B vs shm "
            f"{shm_bytes:,.0f} B over the pipe — {ratio:,.0f}x lower "
            f"(>= {args.min_xfer_ratio:g}x required) {verdict}"
        )
        if ratio < args.min_xfer_ratio:
            failures.append(
                f"shm transfer only {ratio:.2f}x below pickle traffic"
            )

    # 2. batch-pool dispatch overhead, committed record.
    floor = baseline.get(FLOOR_CASE, {}).get("mean_s")
    pool = baseline.get(POOL_CASE, {}).get("mean_s")
    if not floor or not pool:
        failures.append(
            f"baseline {args.baseline.name} missing {FLOOR_CASE}/{POOL_CASE}"
        )
    else:
        ratio = pool / floor
        verdict = "OK" if ratio <= args.max_pool_ratio else "FAIL"
        print(
            f"batch-pool (recorded): {pool:.3f}s over floor {floor:.3f}s — "
            f"{ratio:.3f}x (<= {args.max_pool_ratio:g}x required) {verdict}"
        )
        if ratio > args.max_pool_ratio:
            failures.append(
                f"recorded batch-pool mean {ratio:.3f}x the multigroup floor"
            )
    live_floor = current.get(FLOOR_CASE, {}).get("mean_s")
    live_pool = current.get(POOL_CASE, {}).get("mean_s")
    if live_floor and live_pool:
        print(
            f"batch-pool (this run, informational): "
            f"{live_pool / live_floor:.3f}x the floor"
        )

    if failures:
        print("\nFAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("\nOK: data-plane ratios hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
