"""Simulator micro-benchmarks (throughput of the hot paths).

Not a paper figure: tracks the performance of the event engine, the
incremental power accountant, the vectorised priority queue, the
columnar metrics recorder, the scheduling pass, both a small and a
full-scale (5040-node) replay, and the experiment harness's execution
backends (serial vs process pool vs the sharded-store merge pass), so
regressions in the substrate are caught.  CI runs this module with
``--benchmark-json`` and ``benchmarks/check_perf_regression.py``
compares the means against the committed baselines (``BENCH_pr2.json``
for the engine cases, ``BENCH_pr4.json`` for the backend cases,
``BENCH_pr6.json`` for the batched-lockstep cap-sweep cases,
``BENCH_pr9.json`` for the multigroup batch-pool pair,
``BENCH_pr10.json`` for the transfer data-plane cases; >2x regression
fails the job).  ``benchmarks/check_data_plane.py`` additionally holds
the shm-vs-pickle transfer ratio and the batch-pool-vs-floor ratio.
"""

import math
import os
import pickle
import threading

import numpy as np
import pytest

from repro.cluster.curie import curie_machine
from repro.cluster.states import NodeState
from repro.rjms.config import PriorityWeights
from repro.rjms.controller import Controller
from repro.rjms.fairshare import FairShare
from repro.rjms.job import Job
from repro.rjms.queue import PendingQueue
from repro.rjms.reservations import PowercapReservation
from repro.sim.engine import SimEngine
from repro.sim.metrics import MetricsRecorder
from repro.sim.replay import powercap_reservation, run_replay
from repro.workload.intervals import generate_interval
from repro.workload.spec import JobSpec


def test_perf_engine_event_throughput(benchmark):
    def run_10k():
        eng = SimEngine()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(10_000):
            eng.at(float(i % 997), tick)
        eng.run()
        return count

    assert benchmark(run_10k) == 10_000


def test_perf_accountant_bulk_transitions(benchmark):
    machine = curie_machine()  # full 5040 nodes
    acct = machine.new_accountant()
    nodes = np.arange(0, 5040, 2)

    def flip():
        acct.set_state(nodes, NodeState.BUSY, freq_index=7)
        acct.set_state(nodes, NodeState.IDLE)
        return acct.total_power()

    power = benchmark(flip)
    assert power == acct.idle_floor()


def test_perf_accountant_small_transitions(benchmark):
    machine = curie_machine()
    acct = machine.new_accountant()
    nodes = np.arange(16)

    def flip():
        acct.set_state(nodes, NodeState.BUSY, freq_index=3)
        acct.set_state(nodes, NodeState.IDLE)

    benchmark(flip)
    acct.verify()


def test_perf_queue_priority_order(benchmark):
    fs = FairShare(200)
    q = PendingQueue(80640, PriorityWeights(), fs)
    rng = np.random.default_rng(0)
    for jid in range(5000):
        spec = JobSpec(
            jid,
            float(rng.uniform(0, 1e5)),
            int(rng.integers(1, 1000)),
            60.0,
            86400.0,
            int(rng.integers(0, 200)),
        )
        q.add(Job(spec=spec, n_nodes=1))

    order = benchmark(q.order, 2e5)
    assert len(order) == 5000


def test_perf_small_replay(benchmark):
    machine = curie_machine(scale=1 / 56)
    jobs = generate_interval(machine, "medianjob", seed=11)[:600]

    def replay():
        return run_replay(machine, jobs, "NONE", duration=3600.0)

    result = benchmark.pedantic(replay, rounds=2, iterations=1)
    assert result.launched_jobs() > 0


@pytest.mark.slow
def test_perf_full_scale_replay(benchmark):
    """The headline case: 5040 nodes, MIX policy, a 50 % cap window —
    the shape of the paper's Figures 6-8 replays."""
    machine = curie_machine()  # full Curie
    jobs = generate_interval(machine, "medianjob", seed=3)
    caps = [powercap_reservation(machine, 0.5, 3600.0, 2 * 3600.0)]

    def replay():
        return run_replay(
            machine, jobs, "MIX", duration=3 * 3600.0, powercaps=caps
        )

    result = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert result.launched_jobs() > 1000


# -- columnar recorder ---------------------------------------------------------------

_REC_FREQS = (1.2, 1.5, 1.8, 2.1, 2.4, 2.7)


def _filled_recorder(n_samples: int) -> MetricsRecorder:
    rec = MetricsRecorder(_REC_FREQS)
    rng = np.random.default_rng(0)
    cores = rng.integers(0, 2000, size=(n_samples, len(_REC_FREQS))) * 16.0
    power = rng.uniform(0.0, 2.5e6, size=n_samples)
    for i in range(n_samples):
        rec.sample(
            float(i),
            cores_by_freq=cores[i],
            off_cores=0.0,
            power_watts=power[i],
            idle_watts=1e5,
            down_watts=1e4,
            infra_watts=4e5,
            bonus_watts=0.0,
            busy_watts=power[i] * 0.8,
        )
    return rec


def test_perf_recorder_sample_throughput(benchmark):
    """Recording 5k samples (plus same-instant collapses) must stay
    allocation-free per event."""
    cores = np.zeros(len(_REC_FREQS))

    def record():
        rec = MetricsRecorder(_REC_FREQS)
        for i in range(5000):
            t = float(i // 2)  # every other sample collapses in place
            rec.sample(
                t,
                cores_by_freq=cores,
                off_cores=0.0,
                power_watts=1e6,
                idle_watts=1e5,
                down_watts=0.0,
                infra_watts=4e5,
                bonus_watts=0.0,
                busy_watts=9e5,
            )
        return rec.n_samples

    assert benchmark(record) == 2500


def test_perf_recorder_integrals(benchmark):
    """Exact integrals over a 20k-sample series (vectorised, no Python
    loop over samples)."""
    rec = _filled_recorder(20_000)

    def integrate():
        return (
            rec.energy_joules(1000.0, 19_000.0)
            + rec.work_core_seconds(1000.0, 19_000.0)
            + rec.job_energy_joules(1000.0, 19_000.0)
        )

    assert benchmark(integrate) > 0.0


def test_perf_recorder_to_grid(benchmark):
    rec = _filled_recorder(20_000)

    grid = benchmark(rec.to_grid, 0.0, 20_000.0, 10.0)
    assert len(grid["time"]) == 2001


# -- scheduling pass -----------------------------------------------------------------


def _pass_controller(*, blocked: bool) -> Controller:
    """A full-scale controller with 500 pending jobs.

    ``blocked=True``: every node idle but an active cap rejects every
    candidate (the drain regime during a cap window).  ``blocked=False``
    with all nodes busy: the drained fast path (no free nodes).
    Either way a pass starts nothing, so benchmarking it is repeatable.
    """
    machine = curie_machine()
    engine = SimEngine()
    caps = []
    if blocked:
        floor = machine.idle_power()
        caps = [PowercapReservation(start=0.0, end=math.inf, watts=floor + 1.0)]
    controller = Controller(machine, "DVFS", engine, powercaps=caps)
    rng = np.random.default_rng(1)
    walltime_menu = (1800.0, 14400.0, 43200.0, 86400.0)
    for jid in range(500):
        controller.submit(
            JobSpec(
                jid,
                0.0,
                int(rng.integers(1, 64)) * machine.cores_per_node,
                60.0,
                float(walltime_menu[int(rng.integers(0, 4))]),
                int(rng.integers(0, 200)),
            )
        )
    if not blocked:
        controller.accountant.set_state(
            np.arange(machine.n_nodes), NodeState.BUSY, freq_index=7
        )
    return controller


def test_perf_sched_pass_power_blocked(benchmark):
    controller = _pass_controller(blocked=True)

    def one_pass():
        controller._sched_pass()
        return controller.n_running

    assert benchmark(one_pass) == 0


def test_perf_sched_pass_drained(benchmark):
    """No idle nodes: the pass must cost O(1), not O(n_nodes + queue)."""
    controller = _pass_controller(blocked=False)

    def one_pass():
        controller._sched_pass()
        return controller.n_running

    assert benchmark(one_pass) == 0


# -- execution backends --------------------------------------------------------------
#
# One small sweep (8 one-hour medianjob scenarios at one-rack scale)
# through each harness execution path.  Serial is the floor; the pool
# case measures fork + pickle + stream overhead on top of it; the
# sharded-merge case measures the pure orchestration cost of
# reassembling a sweep from a pre-filled shared store (every scenario
# a store hit — the merge pass CI runs after a shard matrix).


def _backend_sweep_scenarios():
    from repro.exp import Scenario

    return [
        Scenario(
            name=f"bench-backend-{i}",
            interval="medianjob",
            policy="MIX",
            scale=1 / 56,
            duration=3600.0,
            seed=i,
            caps=(),
        )
        for i in range(8)
    ]


def test_perf_backend_serial(benchmark):
    from repro.exp import GridRunner, SerialBackend

    scenarios = _backend_sweep_scenarios()

    def sweep():
        with GridRunner(backend=SerialBackend()) as runner:
            return runner.run(scenarios)

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert len(results) == len(scenarios)


def test_perf_backend_pool(benchmark):
    from repro.exp import GridRunner, ProcessPoolBackend

    scenarios = _backend_sweep_scenarios()

    def sweep():
        with GridRunner(backend=ProcessPoolBackend(2)) as runner:
            return runner.run(scenarios)

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert len(results) == len(scenarios)


# -- batched lockstep replay ---------------------------------------------------------
#
# The shape the batch engine exists for: one workload, one platform,
# twelve cap fractions — a powercap sweep column.  The serial case is
# the floor (twelve independent replays); the batch case replays the
# same twelve cells in lockstep, sharing the pre-window prefix via a
# checkpointed warm start.  BENCH_pr6.json records the trajectory.


def _cap_sweep_cells():
    from repro.exp import CapWindow, Scenario

    base = Scenario(
        name="bench-batch",
        interval="medianjob",
        policy="IDLE",
        scale=1 / 56,
        duration=7200.0,
        seed=5,
    )
    fracs = [0.30 + 0.05 * i for i in range(12)]
    return [
        base.with_(name=f"bench-batch-{f:.2f}", caps=(CapWindow(5760.0, 6720.0, f),))
        for f in fracs
    ]


def test_perf_cap_sweep_serial(benchmark):
    from repro.exp import GridRunner, SerialBackend

    cells = _cap_sweep_cells()

    def sweep():
        with GridRunner(backend=SerialBackend()) as runner:
            return runner.run(cells)

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert len(results) == len(cells)


def test_perf_cap_sweep_batch(benchmark):
    from repro.exp import GridRunner, make_backend

    cells = _cap_sweep_cells()

    def sweep():
        with GridRunner(backend=make_backend("batch")) as runner:
            return runner.run(cells)

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert len(results) == len(cells)


def test_perf_cap_sweep_warm(benchmark, tmp_path):
    """Cross-run warm start: the twelve-cell sweep against a
    checkpoint store seeded by an earlier (untimed) run.  Every cell
    restores the ~80% pre-window prefix from disk instead of replaying
    it; the gap to 'serial' is the persistent-checkpoint payoff, and
    unlike 'batch' it survives process and run boundaries.
    BENCH_pr8.json records the trajectory."""
    from repro.exp import (
        DirectoryCheckpointStore,
        GridRunner,
        MemoryStore,
        SerialBackend,
    )

    cells = _cap_sweep_cells()
    ck_root = tmp_path / "ckpts"
    with GridRunner(
        store=MemoryStore(), checkpoints=DirectoryCheckpointStore(ck_root)
    ) as runner:
        runner.run(cells[:1])  # seed: publish the shared prefix once

    def sweep():
        with GridRunner(
            backend=SerialBackend(),
            store=MemoryStore(),
            checkpoints=DirectoryCheckpointStore(ck_root),
        ) as runner:
            report = runner.sweep(cells)
            assert report.checkpoints["hits"] == len(cells)
            return report.results

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert len(results) == len(cells)


# -- batch x pool composition --------------------------------------------------------
#
# The shape the batch-pool backend exists for: several independent
# lockstep groups (different seeds — different workloads) that the
# in-process batch backend runs one after another on one core.  The
# batch-pool case dispatches whole groups onto pool workers, so the
# sweep's wall clock approaches max(group) instead of sum(groups).
# BENCH_pr9.json records both trajectories.


def _multigroup_cap_sweep_cells():
    """Three lockstep groups (seeds 5/6/7) x four cap fractions."""
    from repro.exp import CapWindow, Scenario

    cells = []
    for seed in (5, 6, 7):
        base = Scenario(
            name=f"bench-bp-s{seed}",
            interval="medianjob",
            policy="IDLE",
            scale=1 / 56,
            duration=7200.0,
            seed=seed,
        )
        for i in range(4):
            f = 0.30 + 0.05 * i
            cells.append(
                base.with_(
                    name=f"bench-bp-s{seed}-{f:.2f}",
                    caps=(CapWindow(5760.0, 6720.0, f),),
                )
            )
    return cells


def test_perf_cap_sweep_batch_multigroup(benchmark):
    """The single-process floor of the batch-pool comparison: the same
    three-group, twelve-cell sweep through the in-process batch
    backend — groups replay in lockstep, but one after another."""
    from repro.exp import GridRunner, make_backend

    cells = _multigroup_cap_sweep_cells()

    def sweep():
        with GridRunner(backend=make_backend("batch")) as runner:
            return runner.run(cells)

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert len(results) == len(cells)


def test_perf_cap_sweep_batchpool(benchmark):
    """Batch x pool: the same three groups dispatched whole onto four
    pool workers under the LPT cost-model schedule.  On a >=4-core
    runner this runs >=2x faster than the single-process multigroup
    floor above; on fewer cores the fork/pickle overhead can eat the
    win, so there is deliberately no in-test speedup assertion — the
    CI perf gate (check_perf_regression.py against BENCH_pr9.json)
    holds the recorded trajectory instead."""
    from repro.exp import GridRunner, make_backend

    cells = _multigroup_cap_sweep_cells()

    def sweep():
        with GridRunner(backend=make_backend("batch-pool", workers=4)) as runner:
            return runner.run(cells)

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert len(results) == len(cells)


# -- zero-copy transfer data plane ---------------------------------------------------
#
# The shm transport's reason to exist: moving one 12-cell lockstep
# group's series payloads (12 cells x 8 arrays x 8640 float64 samples,
# ~6.6 MB) from pool workers back to the driver.  The pickle case is
# what multiprocessing does without it — serialise, copy through a
# pipe, deserialise: three full copies of every byte.  The shm case
# copies each cell's arrays into a named segment once and ships a
# few-hundred-byte descriptor through the same pipe; the driver adopts
# zero-copy views.
#
# Each case records the driver<->worker traffic it generated as
# ``extra_info["pipe_bytes"]`` — the cost the transport exists to cut.
# ``benchmarks/check_data_plane.py`` gates that ratio (shm must move
# >=5x fewer bytes over the boundary; in practice it is ~3 orders of
# magnitude) alongside the batch-pool-vs-floor wall-clock ratio, and
# ``BENCH_pr10.json`` records the wall-clock trajectories.  Wall clock
# alone is deliberately not the gate: on a single-core runner both
# paths are bounded by the same worker-side memcpy, so the pipe-bytes
# column is where the win is visible everywhere, and the driver-side
# zero-copy adopt pays off only once cores are contended.

_XFER_CELLS = 12
_XFER_KEYS = ("time", "power", "idle", "down", "infra", "bonus", "busy", "work")
_XFER_SAMPLES = 8640
_XFER_NBYTES = _XFER_CELLS * len(_XFER_KEYS) * _XFER_SAMPLES * 8


def _transfer_payloads():
    rng = np.random.default_rng(12)
    return [
        {k: rng.uniform(0.0, 2.5e6, size=_XFER_SAMPLES) for k in _XFER_KEYS}
        for _ in range(_XFER_CELLS)
    ]


def _pipe_round_trip(blob: bytes) -> bytes:
    """One worker->driver hop: write through an OS pipe from a second
    thread (what multiprocessing's result queue does), read it back."""
    r, w = os.pipe()

    def writer():
        os.write(w, len(blob).to_bytes(8, "little"))
        view = memoryview(blob)
        while view:
            sent = os.write(w, view[: 1 << 20])
            view = view[sent:]
        os.close(w)

    t = threading.Thread(target=writer)
    t.start()
    size = int.from_bytes(os.read(r, 8), "little")
    chunks = []
    got = 0
    while got < size:
        chunk = os.read(r, min(1 << 20, size - got))
        if not chunk:  # pragma: no cover - writer died
            break
        chunks.append(chunk)
        got += len(chunk)
    os.close(r)
    t.join()
    return b"".join(chunks)


def test_perf_transfer_pickle_series(benchmark):
    payloads = _transfer_payloads()
    piped = [0]

    def ship():
        total = 0
        piped[0] = 0
        for arrays in payloads:
            blob = pickle.dumps(arrays, protocol=pickle.HIGHEST_PROTOCOL)
            piped[0] += len(blob)
            out = pickle.loads(_pipe_round_trip(blob))
            total += sum(a.nbytes for a in out.values())
        return total

    assert benchmark(ship) == _XFER_NBYTES
    assert piped[0] > _XFER_NBYTES  # the full arrays crossed the pipe
    benchmark.extra_info["pipe_bytes"] = piped[0]


def test_perf_transfer_shm_series(benchmark):
    from repro.exp import shm

    if not shm.shm_available():  # pragma: no cover - exotic platform
        pytest.skip("multiprocessing.shared_memory unavailable")
    payloads = _transfer_payloads()
    prefix = shm.new_prefix()
    piped = [0]

    def ship():
        total = 0
        piped[0] = 0
        for arrays in payloads:
            desc = shm.arena.place(arrays, prefix=prefix, min_bytes=0)
            blob = pickle.dumps(desc, protocol=pickle.HIGHEST_PROTOCOL)
            piped[0] += len(blob)
            with shm.arena.adopt(pickle.loads(_pipe_round_trip(blob))) as view:
                total += sum(a.nbytes for a in view.arrays.values())
        return total

    assert benchmark(ship) == _XFER_NBYTES
    assert not shm.live_segments(prefix)
    assert piped[0] * 5 < _XFER_NBYTES  # only descriptors crossed the pipe
    benchmark.extra_info["pipe_bytes"] = piped[0]


def test_perf_backend_sharded_merge(benchmark, tmp_path):
    from repro.exp import (
        GridRunner,
        SharedDirectoryStore,
        make_backend,
        render_results_grid,
    )

    scenarios = _backend_sweep_scenarios()
    # Untimed setup: two shard jobs fill one shared store.
    for k in range(2):
        with GridRunner(
            backend=make_backend("serial", shard=(k, 2)),
            store=SharedDirectoryStore(tmp_path),
        ) as runner:
            runner.run(scenarios)

    def merge_pass():
        with GridRunner(store=SharedDirectoryStore(tmp_path)) as runner:
            results = runner.run(scenarios)
        assert all(r.cached for r in results)
        return render_results_grid(results)

    table = benchmark.pedantic(merge_pass, rounds=3, iterations=1)
    assert "medianjob" in table
