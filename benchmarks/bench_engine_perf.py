"""Simulator micro-benchmarks (throughput of the hot paths).

Not a paper figure: tracks the performance of the event engine, the
incremental power accountant, the vectorised priority queue and a
full small replay, so regressions in the substrate are caught.
"""

import numpy as np

from repro.cluster.curie import curie_machine
from repro.cluster.states import NodeState
from repro.rjms.config import PriorityWeights
from repro.rjms.fairshare import FairShare
from repro.rjms.job import Job
from repro.rjms.queue import PendingQueue
from repro.sim.engine import SimEngine
from repro.sim.replay import run_replay
from repro.workload.intervals import generate_interval
from repro.workload.spec import JobSpec


def test_perf_engine_event_throughput(benchmark):
    def run_10k():
        eng = SimEngine()
        count = 0

        def tick():
            nonlocal count
            count += 1

        for i in range(10_000):
            eng.at(float(i % 997), tick)
        eng.run()
        return count

    assert benchmark(run_10k) == 10_000


def test_perf_accountant_bulk_transitions(benchmark):
    machine = curie_machine()  # full 5040 nodes
    acct = machine.new_accountant()
    nodes = np.arange(0, 5040, 2)

    def flip():
        acct.set_state(nodes, NodeState.BUSY, freq_index=7)
        acct.set_state(nodes, NodeState.IDLE)
        return acct.total_power()

    power = benchmark(flip)
    assert power == acct.idle_floor()


def test_perf_accountant_small_transitions(benchmark):
    machine = curie_machine()
    acct = machine.new_accountant()
    nodes = np.arange(16)

    def flip():
        acct.set_state(nodes, NodeState.BUSY, freq_index=3)
        acct.set_state(nodes, NodeState.IDLE)

    benchmark(flip)
    acct.verify()


def test_perf_queue_priority_order(benchmark):
    fs = FairShare(200)
    q = PendingQueue(80640, PriorityWeights(), fs)
    rng = np.random.default_rng(0)
    for jid in range(5000):
        spec = JobSpec(
            jid,
            float(rng.uniform(0, 1e5)),
            int(rng.integers(1, 1000)),
            60.0,
            86400.0,
            int(rng.integers(0, 200)),
        )
        q.add(Job(spec=spec, n_nodes=1))

    order = benchmark(q.order, 2e5)
    assert len(order) == 5000


def test_perf_small_replay(benchmark):
    machine = curie_machine(scale=1 / 56)
    jobs = generate_interval(machine, "medianjob", seed=11)[:600]

    def replay():
        return run_replay(machine, jobs, "NONE", duration=3600.0)

    result = benchmark.pedantic(replay, rounds=2, iterations=1)
    assert result.launched_jobs() > 0
