#!/usr/bin/env python
"""Print the benchmark trajectory across every committed ``BENCH_pr*.json``.

Usage::

    python benchmarks/bench_trajectory.py [bench.json]

One row per benchmark, one column per committed baseline (in PR
order), plus an optional ``now`` column from a live pytest-benchmark
JSON.  The last two committed means for a row are compared: a >2x jump
is flagged, so a regression that slipped past ``check_perf_regression``
(which only compares against the single newest baseline containing the
case) is still visible against the full history in the CI log.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_means(path: Path) -> dict[str, float]:
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("benchmarks", {})
    if isinstance(entries, list):  # raw pytest-benchmark output
        return {b["name"]: float(b["stats"]["mean"]) for b in entries}
    return {name: float(e["mean_s"]) for name, e in entries.items()}


def fmt(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "current", type=Path, nargs="?", default=None,
        help="optional live pytest-benchmark JSON for a 'now' column",
    )
    args = parser.parse_args(argv)

    baselines = sorted(
        REPO.glob("BENCH_pr*.json"),
        key=lambda p: int(re.search(r"\d+", p.stem).group()),
    )
    if not baselines:
        print("no BENCH_pr*.json baselines found", file=sys.stderr)
        return 1
    columns = [(p.stem.removeprefix("BENCH_"), load_means(p)) for p in baselines]
    if args.current is not None:
        columns.append(("now", load_means(args.current)))

    names = sorted({n for _, means in columns for n in means})
    width = max(len(n) for n in names)
    header = f"{'benchmark':<{width}}" + "".join(
        f"  {label:>8}" for label, _ in columns
    )
    print(header)
    print("-" * len(header))
    flagged = []
    for name in names:
        row = [means.get(name) for _, means in columns]
        committed = [v for v in row[: len(baselines)] if v is not None]
        flag = ""
        if len(committed) >= 2 and committed[-2] > 0:
            jump = committed[-1] / committed[-2]
            if jump > 2.0:
                flag = f"  << {jump:.1f}x vs prior record"
                flagged.append(name)
        print(
            f"{name:<{width}}"
            + "".join(f"  {fmt(v):>8}" for v in row)
            + flag
        )
    if flagged:
        print(
            f"\nnote: {len(flagged)} benchmark(s) jumped >2x between their "
            "last two committed records: " + ", ".join(flagged)
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
