"""Figure 2 — power consumption and bonus per enclosure level.

Regenerates the table (node/chassis/rack component watts, bonuses and
accumulated saved power) from the topology model and validates every
published number, including the Section VI-A worked example (a
complete chassis beats 20 scattered nodes).
"""

import numpy as np

from repro.cluster.curie import CURIE_TOPOLOGY
from repro.rjms.reservations import shutdown_savings_from_idle

from conftest import write_artifact

NODE_MAX = 358.0


def build_table() -> list[dict]:
    return CURIE_TOPOLOGY.bonus_figure_rows(NODE_MAX)


def render(rows) -> str:
    lines = [
        f"{'level':<10} {'components (W)':>15} {'bonus (W)':>10} {'accumulated (W)':>16}"
    ]
    for r in rows:
        lines.append(
            f"{r['level']:<10} {r['component_watts']:>15.0f} "
            f"{r['bonus_watts']:>10.0f} {r['accumulated_watts']:>16.0f}"
        )
    return "\n".join(lines)


def test_fig2_power_bonus_table(benchmark, artifact_dir):
    rows = benchmark(build_table)
    by = {r["level"]: r for r in rows}
    # Paper's Figure 2, verbatim.
    assert by["node"]["component_watts"] == 14
    assert by["node"]["accumulated_watts"] == 344
    assert by["chassis"]["component_watts"] == 248
    assert by["chassis"]["bonus_watts"] == 500
    assert by["chassis"]["accumulated_watts"] == 6692
    assert by["rack"]["component_watts"] == 900
    assert by["rack"]["bonus_watts"] == 3400
    assert by["rack"]["accumulated_watts"] == 34360
    write_artifact("fig2_power_bonus.txt", render(rows))


def test_fig2_worked_example(benchmark):
    """Section VI-A: to shave 6600 W, 20 scattered nodes save 6880 W
    but one grouped chassis (18 nodes) saves 6692 W — still enough,
    with two extra nodes left computing."""

    def example():
        scattered = 20 * (NODE_MAX - 14.0)
        grouped = CURIE_TOPOLOGY.accumulated_chassis_watts(NODE_MAX)
        return scattered, grouped

    scattered, grouped = benchmark(example)
    assert scattered == 6880
    assert grouped == 6692
    assert grouped >= 6600
    assert 20 - 18 == 2  # nodes gained back


def test_fig2_savings_function_consistency(benchmark):
    """The runtime savings function agrees with the static table for
    whole enclosures (relative to busy nodes the accumulated value
    adds the busy-idle gap)."""

    def savings():
        topo = CURIE_TOPOLOGY
        chassis = shutdown_savings_from_idle(topo.nodes_of_chassis(0), topo, 117.0)
        rack = shutdown_savings_from_idle(topo.nodes_of_rack(0), topo, 117.0)
        return chassis, rack

    chassis, rack = benchmark(savings)
    # accumulated(chassis) = savings_from_idle + 18 * (Pmax - idle)
    assert chassis + 18 * (NODE_MAX - 117.0) == 6692
    assert rack + 90 * (NODE_MAX - 117.0) == 34360
