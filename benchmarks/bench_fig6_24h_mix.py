"""Figure 6 — 24 h workload, MIX policy, one-hour 40 % reservation.

Runs the library scenario ``fig6-24h-mix-40`` through the experiment
harness (:mod:`repro.exp`), regenerates the stacked cores-by-frequency
and watts-by-state series and validates the paper's observations:

* the system "prepares itself" — jobs launch at 2.0 GHz ahead of the
  window;
* the offline phase switches grouped nodes off during the window and
  the power bonus appears;
* after the window, 2.7 GHz launches resume and utilisation rebounds
  to nearly 100 % while old 2.0 GHz jobs gradually drain.

Timing note: the benchmarked region is the *end-to-end scenario*
(machine construction + workload synthesis + replay), not the bare
replay of the pre-harness version — timings are not comparable with
pre-PR-1 artifacts.
"""

import numpy as np

from repro.analysis.figures import middle_window, render_series_ascii
from repro.exp import get_scenario, scenario_series

from conftest import HOUR, repro_scale, write_artifact

DURATION = 24 * HOUR
CAP = 0.4

SCENARIO = get_scenario("fig6-24h-mix-40")


def run(scale):
    return scenario_series(SCENARIO.with_(scale=scale), grid_dt=600.0)


def test_fig6_24h_mix_series(benchmark, artifact_dir):
    series = benchmark.pedantic(run, args=(repro_scale(),), rounds=1, iterations=1)
    grid = series["grid"]
    window = series["window"]
    assert window == middle_window(DURATION)
    t = grid["time"]
    pre = (t >= window[0] - 2 * HOUR) & (t < window[0])
    inside = (t >= window[0]) & (t < window[1])
    after = (t >= window[1] + 0.25 * HOUR) & (t < window[1] + 4 * HOUR)

    total = series["total_cores"]
    at20 = grid["cores@2"]
    at27 = grid["cores@2.7"]
    busy = sum(grid[f"cores@{g:g}"] for g in series["frequencies"])

    # Preparation: a substantial 2.0 GHz population before the window.
    assert at20[pre].mean() > 0.1 * total

    # Inside the window: grouped switch-off visible, bonus harvested.
    assert grid["off_cores"][inside].max() > 0.2 * total
    assert grid["bonus"][inside].max() > 0

    # Power approaches the cap inside the window (drain tail allowed,
    # the paper's default takes "no extreme actions").
    cap_watts = series["cap_watts"]
    assert grid["power"][inside].min() <= cap_watts * 1.02

    # Rebound: utilisation returns to nearly 100 % after the window
    # and 2.7 GHz launches resume.
    assert busy[after].mean() > 0.85 * total
    assert at27[after].max() > at27[inside].max()

    result = series["result"]
    plan = result.controller.shutdown_plans[0]
    assert plan.any_shutdown and plan.bonus_watts > 0

    text = render_series_ascii(series, width=96, height=12)
    summary = result.summary()
    text += "\n\nsummary: " + ", ".join(f"{k}={v:.4g}" for k, v in summary.items())
    text += (
        f"\noffline plan: {plan.n_off_selected} nodes "
        f"({plan.n_full_racks} racks + {plan.n_full_chassis} chassis), "
        f"bonus {plan.bonus_watts:.0f} W"
    )
    write_artifact("fig6_24h_mix.txt", text)


def test_fig6_mix_frequencies_restricted(benchmark):
    """MIX only ever assigns the 2.0-2.7 GHz range (Section VI-B)."""
    series = benchmark.pedantic(run, args=(repro_scale(),), rounds=1, iterations=1)
    freqs = {
        r.freq_ghz
        for r in series["result"].recorder.jobs.values()
        if r.freq_ghz is not None
    }
    assert freqs <= {2.0, 2.2, 2.4, 2.7}
    assert 2.0 in freqs
