"""Figure 5 — degmin and rho per benchmark; best mechanism.

Regenerates the comparison table between DVFS and switch-off on Curie
for every published benchmark degradation, under the table's rho
convention (see DESIGN.md, model nuances), and the Section VI-B
idle-fallback corollary under the exact capacity criterion.
"""

from repro.cluster.curie import CURIE_BENCHMARK_DEGMIN
from repro.core.powermodel import dvfs_beats_shutdown_exact, rho

from conftest import write_artifact

PMAX, PMIN, POFF, IDLE = 358.0, 193.0, 14.0, 117.0

PAPER_RHO = {
    "linpack": -0.027,
    "IMB": -0.029,
    "SPEC Float": -0.088,
    "SPEC Integer": -0.134,
    "Common value": -0.174,
    "NAS suite": -0.225,
    "STREAM": -0.350,
    "GROMACS": -0.422,
}


def build_table():
    rows = []
    for name, degmin in CURIE_BENCHMARK_DEGMIN.items():
        r = rho(degmin, PMAX, PMIN, POFF)
        rows.append(
            {
                "benchmark": name,
                "degmin": degmin,
                "rho": r,
                "best": "Switch-off" if r <= 0 else "DVFS",
            }
        )
    return rows


def render(rows) -> str:
    lines = [f"{'benchmark':<14} {'degmin':>7} {'rho':>8} {'paper rho':>10} {'best':>11}"]
    for r in rows:
        lines.append(
            f"{r['benchmark']:<14} {r['degmin']:>7.2f} {r['rho']:>8.3f} "
            f"{PAPER_RHO[r['benchmark']]:>10.3f} {r['best']:>11}"
        )
    return "\n".join(lines)


def test_fig5_rho_table(benchmark, artifact_dir):
    rows = benchmark(build_table)
    for r in rows:
        assert abs(r["rho"] - PAPER_RHO[r["benchmark"]]) < 5e-3, r
        assert r["best"] == "Switch-off"
    write_artifact("fig5_rho_table.txt", render(rows))


def test_fig5_breakeven_degmin(benchmark):
    """The NA row: rho crosses zero at degmin ~ 2.27."""
    r = benchmark(rho, 2.27, PMAX, PMIN, POFF)
    assert abs(r) < 5e-3


def test_fig5_idle_fallback_flips_to_dvfs(benchmark):
    """Section VI-B: with idling instead of switching off
    (Poff = 117 W), DVFS becomes the best policy in all cases."""

    def check_all():
        return [
            dvfs_beats_shutdown_exact(degmin, PMAX, PMIN, IDLE)
            for degmin in CURIE_BENCHMARK_DEGMIN.values()
        ]

    assert all(benchmark(check_all))
