"""Shared fixtures for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  The
cluster scale is controlled by ``REPRO_SCALE`` (default 0.125 — a
630-node Curie; all reported quantities are normalised and
scale-invariant).  Artifacts are written to ``benchmarks/out/`` so
EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.cluster.curie import curie_machine
from repro.workload.intervals import generate_interval

HOUR = 3600.0
OUT_DIR = Path(__file__).parent / "out"


def repro_scale() -> float:
    return float(os.environ.get("REPRO_SCALE", "0.125"))


@pytest.fixture(scope="session")
def machine():
    return curie_machine(scale=repro_scale())


@pytest.fixture(scope="session")
def workloads(machine):
    """The paper's three 5-hour intervals."""
    return {
        name: generate_interval(machine, name)
        for name in ("bigjob", "medianjob", "smalljob")
    }


@pytest.fixture(scope="session")
def workload_24h(machine):
    return generate_interval(machine, "24h")


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(name: str, content: str) -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(content, encoding="utf-8")
    return path
