"""Figure 8 — the full evaluation grid, via the experiment harness.

{bigjob, medianjob, smalljob} x {100 %/None, 80 %, 60 %, 40 %} x
{SHUT, DVFS, MIX}: one-hour powercap reservation in the middle of
each five-hour replay; normalised total energy, launched jobs and
work per cell.  The 27 cells are expanded by
:func:`repro.exp.paper_grid_scenarios` and executed by a
:class:`repro.exp.GridRunner` worker pool (``REPRO_BENCH_WORKERS``,
default 2) — parallel results are bit-identical to serial ones, which
is what makes the grid comparable at all.  Shape assertions follow
Section VII-C's reading of the figure; absolute values are recorded
in the artifact.

Timing note: the single benchmarked region is the whole grid —
pool startup, per-worker workload synthesis and all 27 replays —
replacing the pre-harness per-cell replay timings.
"""

import os

import pytest

from repro.analysis.report import GridCell, render_grid
from repro.exp import (
    GridRunner,
    cell_from_result,
    make_backend,
    make_store,
    paper_grid_scenarios,
    shard_scenarios,
    parse_shard,
)

from conftest import repro_scale, write_artifact

#: (cap_fraction, policy) rows of the paper's grid.
ROWS = [
    (1.0, "NONE"),
    (0.8, "DVFS"),
    (0.8, "SHUT"),
    (0.6, "MIX"),
    (0.6, "DVFS"),
    (0.6, "SHUT"),
    (0.4, "MIX"),
    (0.4, "DVFS"),
    (0.4, "SHUT"),
]
WORKLOADS = ("bigjob", "medianjob", "smalljob")

_cells: dict[tuple[str, float, str], GridCell] = {}

#: deterministic slice of a split bench sweep, e.g. "1/2" (k/n, 1-based)
_SHARD = os.environ.get("REPRO_BENCH_SHARD")


def _run_grid():
    """The grid through the configured backend/store.

    ``REPRO_BENCH_WORKERS`` (default 2) sizes the pool,
    ``REPRO_BENCH_BACKEND`` (serial|pool) overrides the backend,
    ``REPRO_BENCH_SHARD`` (k/n) restricts to one deterministic shard,
    and ``REPRO_BENCH_STORE`` (memory|dir:PATH|shared:PATH) selects
    the result store — the knobs CI uses to split this sweep across
    jobs sharing one store artifact.
    """
    scenarios = paper_grid_scenarios(scale=repro_scale())
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))
    backend = make_backend(
        os.environ.get("REPRO_BENCH_BACKEND"), workers=workers, shard=_SHARD
    )
    store_spec = os.environ.get("REPRO_BENCH_STORE")
    store = make_store(store_spec) if store_spec else None
    with GridRunner(backend=backend, store=store) as runner:
        return runner.run(scenarios)


def _expected_cells() -> int:
    scenarios = paper_grid_scenarios(scale=repro_scale())
    if _SHARD is None:
        return len(scenarios)
    return len(shard_scenarios(scenarios, *parse_shard(_SHARD)))


def test_fig8_grid_runner(benchmark):
    """Execute the 27-cell grid (or this job's shard) through the
    configured backend (timed)."""
    results = benchmark.pedantic(_run_grid, rounds=1, iterations=1)
    assert len(results) == _expected_cells()
    for r in results:
        cell = cell_from_result(r)
        _cells[(cell.workload, cell.cap_fraction, cell.policy)] = cell
        assert 0.0 <= cell.work_norm <= 1.0 + 1e-9
        assert 0.0 <= cell.energy_norm <= 1.0 + 1e-9
    # The expansion covered exactly the paper's rows (a shard covers
    # its deterministic subset of them).
    paper_rows = {(w, f, p) for w in WORKLOADS for (f, p) in ROWS}
    if _SHARD is None:
        assert set(_cells) == paper_rows
    else:
        assert set(_cells) <= paper_rows


def test_fig8_shapes(benchmark, artifact_dir):
    """Cross-cell shape claims of Section VII-C."""
    if _SHARD is not None:
        pytest.skip("sharded bench run: the shape claims need the full grid")
    assert len(_cells) == len(ROWS) * len(WORKLOADS), "run the full grid first"
    cells = [
        _cells[(w, f, p)] for w in WORKLOADS for (f, p) in ROWS
    ]
    benchmark(render_grid, cells)

    for w in WORKLOADS:
        none = _cells[(w, 1.0, "NONE")]
        # The replayed intervals saturate the machine without a cap.
        assert none.work_norm > 0.9

        for policy in ("SHUT", "DVFS", "MIX"):
            fracs = [f for (f, p) in ROWS if p == policy]
            # "work and energy decrease proportionally to the powercap
            # diminution": monotone non-increasing with the cap.
            works = [_cells[(w, f, policy)].work_norm for f in sorted(fracs, reverse=True)]
            energies = [
                _cells[(w, f, policy)].energy_norm for f in sorted(fracs, reverse=True)
            ]
            assert all(a >= b - 0.03 for a, b in zip(works, works[1:])), (w, policy, works)
            assert all(a >= b - 0.02 for a, b in zip(energies, energies[1:])), (
                w,
                policy,
                energies,
            )
            # Capped runs consume less energy than the baseline.
            assert _cells[(w, 0.4, policy)].energy_norm < none.energy_norm

        # "DVFS mode's work is always larger than SHUT mode's work"
        # (slowed jobs inflate accumulated CPU time).
        for f in (0.8, 0.6, 0.4):
            assert (
                _cells[(w, f, "DVFS")].work_norm
                >= _cells[(w, f, "SHUT")].work_norm - 0.02
            ), (w, f)

        # Switch-off mechanisms win the *effective* work per energy
        # trade-off where the cap binds — inside the window — at low
        # caps (Section VII-C's closing observation: "related to the
        # in-advance preparation in the offline part and the gained
        # power due to the bonus").
        for f in (0.4,):
            dvfs = _cells[(w, f, "DVFS")]
            shut = _cells[(w, f, "SHUT")]
            mix = _cells[(w, f, "MIX")]
            eff = lambda c: c.window_effective_work_norm / max(
                c.window_energy_norm, 1e-9
            )
            assert max(eff(shut), eff(mix)) >= eff(dvfs) - 0.02, (w, f)

    # "The MIX mode provides most of the time the best energy
    # consumption" — against SHUT (its switch-off sibling) in the
    # majority of capped cells.
    wins = 0
    comparisons = 0
    for w in WORKLOADS:
        for f in (0.6, 0.4):
            comparisons += 1
            if (
                _cells[(w, f, "MIX")].energy_norm
                <= _cells[(w, f, "SHUT")].energy_norm + 1e-6
            ):
                wins += 1
    assert wins * 2 >= comparisons, f"MIX beat SHUT on energy in {wins}/{comparisons}"

    lines = [render_grid(cells), ""]
    lines.append("effective-work / energy trade-off at the 40 % cap:")
    lines.append("  (whole interval | inside the cap window)")
    for w in WORKLOADS:
        for p in ("SHUT", "DVFS", "MIX"):
            c = _cells[(w, 0.4, p)]
            lines.append(
                f"  {w:10s} {p:4s}: eff_work={c.effective_work_norm:.3f} "
                f"energy={c.energy_norm:.3f} "
                f"ratio={c.effective_work_norm / c.energy_norm:.3f} | "
                f"window eff_work={c.window_effective_work_norm:.3f} "
                f"window energy={c.window_energy_norm:.3f} "
                f"ratio={c.window_effective_work_norm / c.window_energy_norm:.3f}"
            )
    write_artifact("fig8_policy_grid.txt", "\n".join(lines))
